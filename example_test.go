package blitzcoin_test

import (
	"fmt"

	"blitzcoin"
)

// The coin exchange from Fig. 2: tiles equalize their has/max ratios while
// conserving the pool exactly.
func ExampleSimulateExchange() {
	res := blitzcoin.SimulateExchange(blitzcoin.ExchangeOptions{
		Dim:           10,
		Torus:         true,
		RandomPairing: true,
		Init:          blitzcoin.InitHotspot,
		Seed:          42,
	})
	fmt.Println("converged:", res.Converged)
	fmt.Println("coins conserved:", res.CoinsConserved)
	fmt.Println("sub-microsecond:", res.ConvergenceMicros < 1.0)
	// Output:
	// converged: true
	// coins conserved: true
	// sub-microsecond: true
}

// A full-SoC run: BlitzCoin on the 3x3 autonomous-vehicle platform.
func ExampleRunSoC() {
	res := blitzcoin.RunSoC(blitzcoin.SoCOptions{
		SoC:    "3x3",
		Scheme: blitzcoin.BC,
		Seed:   42,
	})
	fmt.Println("completed:", res.Completed)
	fmt.Println("scheme:", res.Scheme)
	fmt.Println("within budget:", res.AvgPowerMW <= res.BudgetMW*1.1)
	// Output:
	// completed: true
	// scheme: BC
	// within budget: true
}

// Eq. 5.3: how many accelerators BlitzCoin supports at a given workload
// phase duration.
func ExampleScalingModel_NMax() {
	for _, m := range blitzcoin.PaperScalingModels() {
		if m.Name != "BC" {
			continue
		}
		fmt.Println("BC law:", m.Law)
		fmt.Println("supports ~1000 accelerators at Tw=7ms:", m.NMax(7000) > 1000)
	}
	// Output:
	// BC law: O(sqrt(N))
	// supports ~1000 accelerators at Tw=7ms: true
}

// The UVFR property: a supply droop stretches the clock instead of
// violating timing, while a conventional dual-loop design breaches its
// guardband.
func ExampleCompareDroop() {
	c := blitzcoin.CompareDroop(700, 0.08)
	fmt.Println("UVFR clock slowed:", c.UVFRFreqDuringMHz < c.UVFRFreqBeforeMHz)
	fmt.Println("conventional violated:", c.ConventionalViolated)
	// Output:
	// UVFR clock slowed: true
	// conventional violated: true
}
