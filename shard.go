package blitzcoin

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"blitzcoin/internal/sweep"
	"blitzcoin/internal/trace"
)

// This file is the sharding surface of the v1 API: how a Request's
// Monte-Carlo work decomposes into trial-range shards that independent
// blitzd workers can compute, and how shard outputs merge back into the
// exact Result a single node would have produced.
//
// The contract mirrors the sweep engine's: every trial unit derives its
// randomness from its global trial index alone, shards carry raw per-trial
// values (whose JSON encoding round-trips exactly), and MergeShards reduces
// them in index order. A request sharded 1, 2, or 4 ways — or re-sharded
// after a worker death — therefore yields byte-identical rows.

// ShardRequest is the wire form of POST /v1/shard: the full request for
// context plus the [Lo, Hi) trial range this worker should compute.
// OptionsHash, when set, must equal the request's canonical hash — it pins
// the shard to the coordinator's view of the options, so a worker running
// a different engine version refuses rather than returning foreign rows.
type ShardRequest struct {
	Request     Request `json:"request"`
	Lo          int     `json:"lo"`
	Hi          int     `json:"hi"`
	OptionsHash string  `json:"options_hash,omitempty"`
}

// ShardResult is one computed shard: the raw per-trial values for [Lo, Hi)
// of the request's flattened trial axis. Exactly one payload field is set,
// matching the request kind:
//
//   - Exchange: per-trial rows of an exchange sweep
//   - FigureTrials: figure-specific trial payloads (one per unit)
//   - Whole: the full Result of an unshardable request (single unit)
type ShardResult struct {
	// Meta stamps the engine that computed the shard and the canonical
	// hash of the request it belongs to.
	Meta ResultMeta `json:"meta"`
	Lo   int        `json:"lo"`
	Hi   int        `json:"hi"`

	Exchange     []ExchangeResult  `json:"exchange,omitempty"`
	FigureTrials []json.RawMessage `json:"figure_trials,omitempty"`
	Whole        *Result           `json:"whole,omitempty"`
}

// ShardUnits returns the length of the request's flattened trial axis: the
// number of independent trial units a cluster may split into ranges.
// Exchange requests shard per trial; figures that register a shard
// decomposition (Fig. 7, the fault study) shard per (point, trial) unit;
// everything else is one indivisible unit. Invalid requests error.
func (r Request) ShardUnits() (int, error) {
	n := r.Normalized()
	if err := n.Validate(); err != nil {
		return 0, err
	}
	switch n.Kind {
	case KindExchange:
		return n.Trials, nil
	case KindFigure:
		if s := figureRegistry[n.Figure.Name].shard; s != nil {
			return s.units(*n.Figure), nil
		}
	}
	return 1, nil
}

// ExecuteShard computes the trial units [lo, hi) of a request — the worker
// half of a distributed sweep. The same index-derived seeds drive each unit
// as in a local run, so the returned values are the exact slice a local
// execution would have produced. Like Execute, it validates first, converts
// panics into errors, and returns ctx.Err() rather than a partial shard
// when cancelled.
func ExecuteShard(ctx context.Context, req Request, lo, hi int) (res *ShardResult, err error) {
	n := req.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	hash, err := n.CanonicalHash()
	if err != nil {
		return nil, err
	}
	units, err := n.ShardUnits()
	if err != nil {
		return nil, err
	}
	if lo < 0 || hi > units || lo >= hi {
		return nil, fmt.Errorf("blitzcoin: shard range [%d,%d) outside [0,%d)", lo, hi, units)
	}
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("blitzcoin: %v", p)
		}
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Publish worker-side trial progress keyed by the request hash, but no
	// sweep lifecycle — the coordinator that planned the shards owns those
	// events. An inherited stream (in-process merges) is reused as is.
	st := trace.FromContext(ctx)
	if !st.Active() {
		st = trace.NewStream(trace.Default(), hash)
		ctx = trace.NewContext(ctx, st)
	}

	out := &ShardResult{Meta: newMeta(n.seed(), hash), Lo: lo, Hi: hi}
	switch {
	case n.Kind == KindExchange:
		out.Exchange = exchangeShardRows(ctx, n, lo, hi)
	case n.Kind == KindFigure && figureRegistry[n.Figure.Name].shard != nil:
		s := figureRegistry[n.Figure.Name].shard
		o := *n.Figure
		out.FigureTrials = sweep.MapRange(ctx, lo, hi, 0, func(g int) json.RawMessage {
			st.TrialStart(g, units)
			raw := s.trial(o, g)
			st.TrialDone(g, units, true, 0)
			return raw
		})
	default:
		// One indivisible unit: the shard is the whole computation.
		whole, err := Execute(ctx, n)
		if err != nil {
			return nil, err
		}
		out.Whole = whole
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MergeShards reduces computed shards back into the Result a single-node
// Execute of the request would return. After discarding exact-duplicate
// ranges (speculative re-execution can legitimately complete the same
// shard twice, and determinism makes the copies interchangeable), the
// surviving shards must tile the request's unit range [0, ShardUnits())
// exactly — any gap, partial overlap, or length mismatch errors — and the
// reduction walks them in range order, so the merged rows are
// byte-identical to local execution at any shard count, arrival order, or
// duplication pattern. The merged ResultMeta records the distinct shard
// count as provenance.
func MergeShards(req Request, shards []*ShardResult) (*Result, error) {
	n := req.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	hash, err := n.CanonicalHash()
	if err != nil {
		return nil, err
	}
	units, err := n.ShardUnits()
	if err != nil {
		return nil, err
	}
	ordered := append([]*ShardResult(nil), shards...)
	for _, s := range ordered {
		if s == nil {
			return nil, fmt.Errorf("blitzcoin: nil shard in merge")
		}
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Lo != ordered[j].Lo {
			return ordered[i].Lo < ordered[j].Lo
		}
		return ordered[i].Hi < ordered[j].Hi
	})
	// Drop exact duplicates (same [Lo, Hi)): the first copy wins, exactly
	// as the coordinator's first-result-wins rule would have chosen.
	deduped := ordered[:0]
	for _, s := range ordered {
		if len(deduped) > 0 {
			prev := deduped[len(deduped)-1]
			if prev.Lo == s.Lo && prev.Hi == s.Hi {
				continue
			}
		}
		deduped = append(deduped, s)
	}
	ordered = deduped
	at := 0
	for _, s := range ordered {
		if s.Lo != at || s.Hi <= s.Lo || s.Hi > units {
			return nil, fmt.Errorf("blitzcoin: shard range [%d,%d) does not tile [0,%d) (next expected lo %d)", s.Lo, s.Hi, units, at)
		}
		if s.Meta.OptionsHash != "" && s.Meta.OptionsHash != hash {
			return nil, fmt.Errorf("blitzcoin: shard [%d,%d) was computed for options %s, want %s", s.Lo, s.Hi, short12(s.Meta.OptionsHash), short12(hash))
		}
		at = s.Hi
	}
	if at != units {
		return nil, fmt.Errorf("blitzcoin: shards cover [0,%d) of [0,%d)", at, units)
	}

	switch {
	case n.Kind == KindExchange:
		rows := make([]ExchangeResult, 0, units)
		for _, s := range ordered {
			if len(s.Exchange) != s.Hi-s.Lo {
				return nil, fmt.Errorf("blitzcoin: shard [%d,%d) carries %d exchange rows", s.Lo, s.Hi, len(s.Exchange))
			}
			rows = append(rows, s.Exchange...)
		}
		meta := newMeta(n.Exchange.Seed, hash)
		meta.Shards = len(ordered)
		return &Result{Kind: KindExchange, Exchange: foldExchangeSweep(meta, n.Trials, rows)}, nil

	case n.Kind == KindFigure && figureRegistry[n.Figure.Name].shard != nil:
		o := *n.Figure
		trials := make([]json.RawMessage, 0, units)
		for _, s := range ordered {
			if len(s.FigureTrials) != s.Hi-s.Lo {
				return nil, fmt.Errorf("blitzcoin: shard [%d,%d) carries %d figure trials", s.Lo, s.Hi, len(s.FigureTrials))
			}
			trials = append(trials, s.FigureTrials...)
		}
		lines, err := figureRegistry[o.Name].shard.merge(o, trials)
		if err != nil {
			return nil, err
		}
		meta := newMeta(o.Seed, hash)
		meta.Shards = len(ordered)
		return &Result{Kind: KindFigure, Figure: &FigureResult{
			Meta:  meta,
			Name:  o.Name,
			Title: figureRegistry[o.Name].title,
			Lines: lines,
		}}, nil

	default:
		s := ordered[0]
		if s.Whole == nil {
			return nil, fmt.Errorf("blitzcoin: unshardable request merged without a whole result")
		}
		whole := *s.Whole
		switch {
		case whole.Exchange != nil:
			whole.Exchange.Meta.Shards = 1
		case whole.SoC != nil:
			whole.SoC.Meta.Shards = 1
		case whole.Figure != nil:
			whole.Figure.Meta.Shards = 1
		}
		return &whole, nil
	}
}

// short12 abbreviates a canonical hash for error messages.
func short12(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// ClusterOptions configures the coordinator of a distributed sweep
// cluster: which workers it dispatches to and the knobs of shard planning,
// backpressure, liveness, and retry. The zero value is completed with the
// defaults noted per field (see Normalized).
type ClusterOptions struct {
	// Workers is the static worker list (base URLs, e.g.
	// "http://10.0.0.2:8425"); more workers may join at runtime via
	// POST /v1/cluster/join.
	Workers []string `json:"workers,omitempty"`
	// Shards fixes the shard count of every request; 0 plans
	// ShardsPerWorker shards per live worker (clamped to the unit count).
	Shards int `json:"shards,omitempty"`
	// ShardsPerWorker is the auto-planning factor. Slightly over-splitting
	// (default 2) keeps all workers busy when shards finish unevenly and
	// shrinks the re-dispatch cost of a worker death.
	ShardsPerWorker int `json:"shards_per_worker,omitempty"`
	// StealUnit, when positive, bounds the trial units per planned shard:
	// the sweep splits into ceil(units/StealUnit) shards of at most
	// StealUnit units each, overriding Shards/ShardsPerWorker. Smaller
	// units mean finer-grained work stealing — an idle worker can always
	// pull more — at the cost of more dispatch round trips.
	StealUnit int `json:"steal_unit,omitempty"`
	// MaxInflight bounds concurrent shards per worker (backpressure).
	// Default 2.
	MaxInflight int `json:"max_inflight,omitempty"`
	// MaxAttempts bounds dispatch attempts per shard across all workers
	// before the request fails. Default 4.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// RetryBackoffMillis is the base of the exponential per-shard retry
	// backoff (base, 2x, 4x, ...). Default 100.
	RetryBackoffMillis int `json:"retry_backoff_millis,omitempty"`
	// HeartbeatMillis is the liveness-probe cadence. Default 1000.
	HeartbeatMillis int `json:"heartbeat_millis,omitempty"`
	// EvictAfterMillis is how long a worker may stay unreachable before it
	// is evicted (joined workers are dropped; static workers stay listed as
	// dead and revive on a successful probe). Default 5000.
	EvictAfterMillis int `json:"evict_after_millis,omitempty"`
	// ShardTimeoutMillis bounds one shard dispatch, so a hung worker turns
	// into a retry instead of a wedged request. Default 600000 (10 min).
	ShardTimeoutMillis int `json:"shard_timeout_millis,omitempty"`

	// NoSpeculation disables straggler re-execution. By default the
	// coordinator speculatively re-dispatches any shard whose runtime
	// exceeds SpeculationFactor times the SpeculationPercentile of
	// completed-shard latencies; the first byte-identical result wins and
	// the losing copy is cancelled, so speculation never changes rows —
	// only makespan.
	NoSpeculation bool `json:"no_speculation,omitempty"`
	// SpeculationPercentile is the completed-shard latency percentile the
	// straggler threshold is based on, in (0, 1]. Default 0.95.
	SpeculationPercentile float64 `json:"speculation_percentile,omitempty"`
	// SpeculationFactor multiplies the percentile latency to form the
	// straggler threshold; must be at least 1. Default 1.5.
	SpeculationFactor float64 `json:"speculation_factor,omitempty"`
	// SpeculationMinSamples is how many shards must complete before the
	// latency percentile is trusted and speculation arms. Default 3.
	SpeculationMinSamples int `json:"speculation_min_samples,omitempty"`
}

// Normalized returns a copy with every unset field replaced by its
// documented default.
func (o ClusterOptions) Normalized() ClusterOptions {
	o.Workers = append([]string(nil), o.Workers...)
	if o.ShardsPerWorker == 0 {
		o.ShardsPerWorker = 2
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 2
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 4
	}
	if o.RetryBackoffMillis == 0 {
		o.RetryBackoffMillis = 100
	}
	if o.HeartbeatMillis == 0 {
		o.HeartbeatMillis = 1000
	}
	if o.EvictAfterMillis == 0 {
		o.EvictAfterMillis = 5 * o.HeartbeatMillis
	}
	if o.ShardTimeoutMillis == 0 {
		o.ShardTimeoutMillis = 600_000
	}
	if o.SpeculationPercentile == 0 {
		o.SpeculationPercentile = 0.95
	}
	if o.SpeculationFactor == 0 {
		o.SpeculationFactor = 1.5
	}
	if o.SpeculationMinSamples == 0 {
		o.SpeculationMinSamples = 3
	}
	return o
}

// Validate reports whether the normalized options are coherent.
func (o ClusterOptions) Validate() error {
	o = o.Normalized()
	for _, f := range []struct {
		name string
		v    int
	}{
		{"shards", o.Shards},
		{"shards_per_worker", o.ShardsPerWorker},
		{"steal_unit", o.StealUnit},
		{"speculation_min_samples", o.SpeculationMinSamples},
		{"max_inflight", o.MaxInflight},
		{"max_attempts", o.MaxAttempts},
		{"retry_backoff_millis", o.RetryBackoffMillis},
		{"heartbeat_millis", o.HeartbeatMillis},
		{"evict_after_millis", o.EvictAfterMillis},
		{"shard_timeout_millis", o.ShardTimeoutMillis},
	} {
		if f.v < 0 {
			return fmt.Errorf("blitzcoin: negative cluster option %s %d", f.name, f.v)
		}
	}
	if o.SpeculationPercentile <= 0 || o.SpeculationPercentile > 1 {
		return fmt.Errorf("blitzcoin: speculation percentile %v outside (0,1]", o.SpeculationPercentile)
	}
	if o.SpeculationFactor < 1 {
		return fmt.Errorf("blitzcoin: speculation factor %v below 1", o.SpeculationFactor)
	}
	for _, w := range o.Workers {
		if w == "" {
			return fmt.Errorf("blitzcoin: empty worker URL in cluster options")
		}
	}
	return nil
}
