package blitzcoin

import (
	"strings"
	"testing"
)

// customLayout returns a small valid 2x3 platform: CPU, mem, and four...
// no — one CPU, one mem, four accelerators.
func customLayout() CustomSoCOptions {
	return CustomSoCOptions{
		W: 3, H: 2, Torus: true,
		Tiles: []TileSpec{
			{Kind: "cpu"},
			{Kind: "accel", Accel: "FFT"},
			{Kind: "accel", Accel: "FFT"},
			{Kind: "mem"},
			{Kind: "accel", Accel: "Viterbi"},
			{Kind: "accel", Accel: "NVDLA"},
		},
		BudgetMW: 80,
		Tasks: []TaskSpec{
			{Name: "a", Accel: "FFT", WorkCycles: 20e3},
			{Name: "b", Accel: "Viterbi", WorkCycles: 15e3},
			{Name: "c", Accel: "NVDLA", WorkCycles: 30e3, Deps: []int{0, 1}},
		},
		Seed: 1,
	}
}

func TestRunCustomSoC(t *testing.T) {
	res, err := RunCustomSoC(customLayout())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("custom run incomplete: %s", res.String())
	}
	if res.Scheme != "BC" {
		t.Fatalf("default scheme = %s", res.Scheme)
	}
	if res.PeakPowerMW > 80*1.4 {
		t.Fatalf("cap blown: %.1f mW", res.PeakPowerMW)
	}
}

func TestRunCustomSoCAllSchemes(t *testing.T) {
	for _, s := range []Scheme{BC, BCC, CRR, TS, PT, Static} {
		o := customLayout()
		o.Scheme = s
		res, err := RunCustomSoC(o)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !res.Completed {
			t.Fatalf("%s incomplete", s)
		}
	}
}

func TestRunCustomSoCRepeat(t *testing.T) {
	o := customLayout()
	one, err := RunCustomSoC(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Repeat = 3
	three, err := RunCustomSoC(o)
	if err != nil {
		t.Fatal(err)
	}
	if three.ExecMicros <= one.ExecMicros*2 {
		t.Fatalf("3 frames (%.1fus) not much longer than 1 (%.1fus)",
			three.ExecMicros, one.ExecMicros)
	}
}

func TestRunCustomSoCErrors(t *testing.T) {
	cases := map[string]func(*CustomSoCOptions){
		"bad grid":      func(o *CustomSoCOptions) { o.W = 0 },
		"tile mismatch": func(o *CustomSoCOptions) { o.Tiles = o.Tiles[:3] },
		"bad kind":      func(o *CustomSoCOptions) { o.Tiles[0].Kind = "gpu" },
		"bad accel":     func(o *CustomSoCOptions) { o.Tiles[1].Accel = "TPU" },
		"no tasks":      func(o *CustomSoCOptions) { o.Tasks = nil },
		"missing accel": func(o *CustomSoCOptions) { o.Tasks[0].Accel = "GEMM" },
		"cyclic deps": func(o *CustomSoCOptions) {
			o.Tasks[0].Deps = []int{2}
		},
		"no budget": func(o *CustomSoCOptions) { o.BudgetMW = 0 },
	}
	for name, mut := range cases {
		o := customLayout()
		mut(&o)
		if _, err := RunCustomSoC(o); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestRandomWorkloadThroughCustomSoC(t *testing.T) {
	o := customLayout()
	o.Tasks = RandomWorkload(9, 10, []string{"FFT", "Viterbi", "NVDLA"}, 5e3, 25e3, 2)
	res, err := RunCustomSoC(o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("random workload incomplete")
	}
	if !strings.Contains(res.Workload, "custom") {
		t.Fatalf("workload name %q", res.Workload)
	}
}
