package blitzcoin

import (
	"blitzcoin/internal/cpuproxy"
	"blitzcoin/internal/uvfr"
)

// CPUActivityWindow is one sampling window of CPU activity counters, the
// input to the power-proxy extension (Sec. IV-C via Floyd [18] and
// Huang [75]).
type CPUActivityWindow struct {
	Cycles     uint64 `json:"cycles"`
	Instr      uint64 `json:"instr"`
	MemOps     uint64 `json:"mem_ops"`
	FPOps      uint64 `json:"fp_ops"`
	BranchMiss uint64 `json:"branch_miss"`
}

// CPUPowerProxy derives a CPU tile's BlitzCoin coin target from observed
// activity: a mostly-idle core stops hoarding budget that accelerators
// could use, and a busy core claims what its workload actually draws.
type CPUPowerProxy struct {
	mgr *cpuproxy.Manager
}

// NewCPUPowerProxy builds a proxy-driven manager for a CVA6-class core at
// the given coin value (mW per coin). The onTarget callback receives each
// new coin target; wire it to the exchange fabric (or inspect it directly).
func NewCPUPowerProxy(mWPerCoin float64, onTarget func(coins int64)) *CPUPowerProxy {
	return &CPUPowerProxy{mgr: &cpuproxy.Manager{
		Proxy:           cpuproxy.NewProxy(cpuproxy.DefaultWeights(), 0.3),
		Curve:           cpuproxy.NewDynamicCurve(cpuproxy.CVA6(), 0.12),
		MWPerCoin:       mWPerCoin,
		HysteresisCoins: 2,
		SetMax:          onTarget,
	}}
}

// Sample folds one counter window at the given clock and returns the coin
// target the core should request.
func (p *CPUPowerProxy) Sample(w CPUActivityWindow, fMHz float64) int64 {
	return p.mgr.Sample(cpuproxy.Counters{
		Cycles: w.Cycles, Instr: w.Instr, MemOps: w.MemOps,
		FPOps: w.FPOps, BranchMiss: w.BranchMiss,
	}, fMHz)
}

// EstimateMW returns the smoothed power estimate of the last samples.
func (p *CPUPowerProxy) EstimateMW() float64 { return p.mgr.Proxy.EstimateMW() }

// DroopComparison contrasts the UVFR against a conventional dual-loop
// actuator under the same transient supply droop (Sec. II-C, Fig. 9): the
// UVFR's critical-path-replica clock stretches and stays safe by
// construction; the conventional PLL holds frequency and relies on a static
// voltage guardband, which the droop can breach — and which costs dynamic
// power all the time.
type DroopComparison struct {
	// UVFRFreqBeforeMHz and UVFRFreqDuringMHz show the clock stretching.
	UVFRFreqBeforeMHz float64 `json:"uvfr_freq_before_mhz"`
	UVFRFreqDuringMHz float64 `json:"uvfr_freq_during_mhz"`
	// ConventionalViolated reports whether the droop breached the
	// conventional design's guardband (a potential timing failure).
	ConventionalViolated bool `json:"conventional_violated"`
	// GuardbandPowerPenaltyPct is the steady-state dynamic-power overhead
	// the conventional guardband costs; the UVFR's equivalent is zero.
	GuardbandPowerPenaltyPct float64 `json:"guardband_power_penalty_pct"`
}

// CompareDroop runs both actuators to a settled operating point at
// fTargetMHz, injects a droop of droopV volts, and reports the contrast.
// It panics on non-positive targets or negative droop.
func CompareDroop(fTargetMHz, droopV float64) DroopComparison {
	if fTargetMHz <= 0 {
		panic("blitzcoin: non-positive frequency target")
	}
	reg := uvfr.NewRegulator(uvfr.DefaultConfig(800, 0.5, 1.0))
	reg.SetTargetMHz(fTargetMHz)
	reg.SettleCycles(2000)
	before := reg.FreqMHz()
	reg.InjectDroop(droopV)
	during := reg.FreqMHz()

	conv := uvfr.NewConventional(800, 0.5, 1.0, 0.05)
	conv.SetTargetMHz(fTargetMHz)
	conv.InjectDroop(droopV)

	return DroopComparison{
		UVFRFreqBeforeMHz:        before,
		UVFRFreqDuringMHz:        during,
		ConventionalViolated:     conv.TimingViolated(),
		GuardbandPowerPenaltyPct: 100 * conv.GuardbandPowerPenalty(),
	}
}
