package blitzcoin

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"blitzcoin/internal/soc"
)

// ResultMeta makes every result self-describing: which engine produced it,
// from which seed, and from which canonical options (the same hash the
// blitzd cache keys on). All fields are comparable, so results that embed
// a ResultMeta stay comparable with ==.
type ResultMeta struct {
	// APIVersion and EngineVersion echo the versions that produced the
	// result.
	APIVersion    string `json:"api_version"`
	EngineVersion string `json:"engine_version"`
	// Seed is the seed the run was driven by.
	Seed uint64 `json:"seed"`
	// OptionsHash is the canonical hash of the normalized options that
	// produced the result (see Request.CanonicalHash).
	OptionsHash string `json:"options_hash,omitempty"`
	// Shards records distributed provenance: how many cluster shards were
	// merged into the result. 0 means single-node execution. Shard counts
	// never change result rows — MergeShards reduces in index order with
	// index-derived seeds — so this is a serving annotation, not an input.
	Shards int `json:"shards,omitempty"`
	// LedgerSeq and LedgerRoot record ledger provenance: the 1-based
	// sequence the result was appended at and the tree head after the
	// append. Stamped by blitzd when it runs with a ledger; zero/empty
	// otherwise. Like Shards, they annotate serving, never simulation —
	// CanonicalResultSHA clears them before hashing, so the ledgered SHA is
	// independent of where in the ledger the result landed.
	LedgerSeq  uint64 `json:"ledger_seq,omitempty"`
	LedgerRoot string `json:"ledger_root,omitempty"`
}

// meta stamps a result's provenance.
func newMeta(seed uint64, optionsHash string) ResultMeta {
	return ResultMeta{
		APIVersion:    APIVersion,
		EngineVersion: EngineVersion,
		Seed:          seed,
		OptionsHash:   optionsHash,
	}
}

// ExchangeResult reports one exchange simulation.
type ExchangeResult struct {
	// Meta records the engine version, seed, and options hash that
	// produced the result.
	Meta ResultMeta `json:"meta"`
	// Converged reports whether Err crossed the threshold.
	Converged bool `json:"converged"`
	// ConvergenceCycles and ConvergenceMicros time the first crossing.
	ConvergenceCycles uint64  `json:"convergence_cycles"`
	ConvergenceMicros float64 `json:"convergence_micros"`
	// PacketsToConvergence counts NoC packets up to the crossing.
	PacketsToConvergence uint64 `json:"packets_to_convergence"`
	// StartErr and FinalErr are the mean per-tile errors at the start and
	// end of the run; WorstTileErr is the largest residual per-tile error.
	StartErr     float64 `json:"start_err"`
	FinalErr     float64 `json:"final_err"`
	WorstTileErr float64 `json:"worst_tile_err"`
	// TotalPackets and Exchanges count all activity during the run.
	TotalPackets uint64 `json:"total_packets"`
	Exchanges    uint64 `json:"exchanges"`
	// ThermalRejects counts exchanges clamped by the hotspot guard.
	ThermalRejects uint64 `json:"thermal_rejects"`
	// CoinsConserved confirms every coin of the initial pool ended
	// accounted for on a live tile (after audit repair, under faults).
	CoinsConserved bool `json:"coins_conserved"`

	// Fault and recovery counters (all zero on a healthy run).
	Dropped         uint64 `json:"dropped,omitempty"`          // PM-plane packets lost in the fabric
	Retries         uint64 `json:"retries,omitempty"`          // exchanges abandoned by timeout and retried
	LocksBroken     uint64 `json:"locks_broken,omitempty"`     // participation locks freed by the watchdog
	NeighborsPruned int    `json:"neighbors_pruned,omitempty"` // partners removed from pairing sets as dead
	TilesDead       int    `json:"tiles_dead,omitempty"`       // tiles fail-stopped during the run
	AuditRepairs    uint64 `json:"audit_repairs,omitempty"`    // audits that found and repaired a discrepancy
	PoolViolation   int64  `json:"pool_violation,omitempty"`   // unrepaired pool residue at the end of the run
}

// ExchangeSweepResult aggregates a multi-trial exchange request (a
// Request with Trials > 1): per-trial rows plus summary statistics over
// the converged trials.
type ExchangeSweepResult struct {
	// Meta carries the base seed and the hash of the whole request.
	Meta   ResultMeta `json:"meta"`
	Trials int        `json:"trials"`
	// Converged counts trials whose error crossed the threshold;
	// Conserved counts trials that ended with the pool intact.
	Converged int `json:"converged"`
	Conserved int `json:"conserved"`
	// Means over the converged trials.
	MeanConvergenceMicros    float64 `json:"mean_convergence_micros"`
	MeanPacketsToConvergence float64 `json:"mean_packets_to_convergence"`
	MeanExchanges            float64 `json:"mean_exchanges"`
	// MeanFinalErr averages over all trials, converged or not.
	MeanFinalErr float64 `json:"mean_final_err"`
	// Rows holds every trial, in trial order (seed = base + trial*7919).
	Rows []ExchangeResult `json:"rows"`
}

// SoCResult reports one full-system run.
type SoCResult struct {
	// Meta records the engine version, seed, and options hash that
	// produced the result.
	Meta ResultMeta `json:"meta"`

	SoC      string `json:"soc"`
	Scheme   string `json:"scheme"`
	Strategy string `json:"strategy"`
	Workload string `json:"workload"`

	Completed bool `json:"completed"`
	// ExecMicros is the workload makespan.
	ExecMicros float64 `json:"exec_micros"`
	// Response-time statistics over all completed reallocations.
	MeanResponseMicros   float64 `json:"mean_response_micros"`
	MedianResponseMicros float64 `json:"median_response_micros"`
	MaxResponseMicros    float64 `json:"max_response_micros"`
	ResponsesRecorded    int     `json:"responses_recorded"`
	// Power statistics.
	AvgPowerMW      float64 `json:"avg_power_mw"`
	PeakPowerMW     float64 `json:"peak_power_mw"`
	BudgetMW        float64 `json:"budget_mw"`
	UtilizationPct  float64 `json:"utilization_pct"`
	ActivityChanges int     `json:"activity_changes"`

	// Fault-injection outcome (zero on a healthy run).
	TilesKilled   int `json:"tiles_killed,omitempty"`
	TasksRequeued int `json:"tasks_requeued,omitempty"`

	// res holds the raw internal result for the trace/excursion accessors;
	// it does not survive a JSON round trip.
	res soc.Result
}

// LongestCapExcursionCycles returns the longest contiguous span, in NoC
// cycles, during which total power exceeded the budget by more than tolFrac
// (e.g. 0.20 for 20%) — the degraded-mode recovery-bound metric.
func (r SoCResult) LongestCapExcursionCycles(tolFrac float64) uint64 {
	return r.res.LongestCapExcursion(tolFrac)
}

// String renders a one-line summary.
func (r SoCResult) String() string {
	return fmt.Sprintf("%s %s %s %s: exec=%.1fus resp(med)=%.2fus util=%.1f%%",
		r.SoC, r.Scheme, r.Strategy, r.Workload, r.ExecMicros,
		r.MedianResponseMicros, r.UtilizationPct)
}

// WritePowerTraceCSV writes the per-tile power traces of the run
// ("cycle,t00-FFT,..." rows at every change point) to w. It is only
// available on results obtained in-process; a JSON round trip drops the
// trace.
func (r SoCResult) WritePowerTraceCSV(w io.Writer) error {
	return r.res.Recorder.WriteCSV(w)
}

// FigureResult is a reproduced figure or table: the deterministic report
// lines the corresponding CLI prints, served through the unified API.
type FigureResult struct {
	// Meta carries the seed and options hash of the reproduction.
	Meta ResultMeta `json:"meta"`
	// Name is the registry key ("3", "17", "table1", ...); Title is the
	// human heading.
	Name  string `json:"name"`
	Title string `json:"title"`
	// Lines are the report rows, byte-identical to the CLI output at any
	// parallelism.
	Lines []string `json:"lines"`
}

// Result is the union of everything Execute can return; exactly one
// payload is set, matching Kind.
type Result struct {
	Kind     RequestKind          `json:"kind"`
	Exchange *ExchangeSweepResult `json:"exchange,omitempty"`
	SoC      *SoCResult           `json:"soc,omitempty"`
	Figure   *FigureResult        `json:"figure,omitempty"`
}

// Meta returns the active payload's metadata, or nil for an empty Result.
func (r *Result) Meta() *ResultMeta {
	switch {
	case r == nil:
		return nil
	case r.Exchange != nil:
		return &r.Exchange.Meta
	case r.SoC != nil:
		return &r.SoC.Meta
	case r.Figure != nil:
		return &r.Figure.Meta
	}
	return nil
}

// SetLedgerProvenance stamps the result with the ledger position it was
// appended at. blitzd calls it after ledger.Append, before serving.
func (r *Result) SetLedgerProvenance(seq uint64, root string) {
	if m := r.Meta(); m != nil {
		m.LedgerSeq = seq
		m.LedgerRoot = root
	}
}

// CanonicalResultSHA hashes a result's serialized JSON for the ledger:
// the ledger provenance fields are cleared first (they describe where the
// result landed in the ledger, which cannot feed back into the hash the
// ledger records), then the result is re-marshaled and SHA-256'd. Server
// and verifying client both call this, so a stamped response hashes to
// the same digest the daemon appended.
func CanonicalResultSHA(resultJSON []byte) (string, error) {
	var r Result
	if err := json.Unmarshal(resultJSON, &r); err != nil {
		return "", fmt.Errorf("blitzcoin: canonical result sha: %w", err)
	}
	if m := r.Meta(); m != nil {
		m.LedgerSeq = 0
		m.LedgerRoot = ""
	}
	canon, err := json.Marshal(&r)
	if err != nil {
		return "", fmt.Errorf("blitzcoin: canonical result sha: %w", err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}
