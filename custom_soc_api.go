package blitzcoin

import (
	"fmt"

	"blitzcoin/internal/mesh"
	"blitzcoin/internal/rng"
	"blitzcoin/internal/soc"
	"blitzcoin/internal/workload"
)

// TileSpec places one tile on a custom SoC grid. Kind is one of "cpu",
// "mem", "io", "spm", "accel", or "accel-nopm"; Accel names the
// accelerator type for the accel kinds (FFT, Viterbi, NVDLA, GEMM, Conv2D,
// Vision).
type TileSpec struct {
	Kind  string
	Accel string
}

// TaskSpec is one task of a custom workload DAG. Deps index earlier tasks.
type TaskSpec struct {
	Name       string
	Accel      string
	WorkCycles float64
	Deps       []int
}

// CustomSoCOptions describes a user-defined platform and workload: lay out
// any WxH grid of tiles, supply any DAG over the modeled accelerators, and
// run it under any of the implemented PM schemes. This is the
// build-your-own entry point a downstream user starts from when their SoC
// is not one of the paper's three.
type CustomSoCOptions struct {
	Name string
	// W, H are the grid dimensions; Tiles lists W*H tile placements in
	// row-major order.
	W, H  int
	Tiles []TileSpec
	// Torus enables wrap-around neighbor semantics (the paper's choice).
	Torus bool

	BudgetMW float64
	Scheme   Scheme
	// AbsoluteProportional selects AP allocation; default is RP.
	AbsoluteProportional bool

	// Tasks defines the workload; Repeat chains frames (default 1).
	Tasks  []TaskSpec
	Repeat int

	Seed uint64
}

// RunCustomSoC assembles and runs the described platform. Errors report
// invalid layouts or workloads; simulation itself is deterministic for the
// given seed.
func RunCustomSoC(o CustomSoCOptions) (SoCResult, error) {
	if o.W <= 0 || o.H <= 0 {
		return SoCResult{}, fmt.Errorf("blitzcoin: invalid grid %dx%d", o.W, o.H)
	}
	if len(o.Tiles) != o.W*o.H {
		return SoCResult{}, fmt.Errorf("blitzcoin: %d tiles for a %dx%d grid", len(o.Tiles), o.W, o.H)
	}
	if o.Name == "" {
		o.Name = fmt.Sprintf("custom-%dx%d", o.W, o.H)
	}
	if o.Scheme == "" {
		o.Scheme = BC
	}
	if o.Repeat == 0 {
		o.Repeat = 1
	}

	tiles := make([]soc.TileConfig, len(o.Tiles))
	for i, ts := range o.Tiles {
		switch ts.Kind {
		case "cpu":
			tiles[i] = soc.TileConfig{Kind: soc.TileCPU}
		case "mem":
			tiles[i] = soc.TileConfig{Kind: soc.TileMem}
		case "io":
			tiles[i] = soc.TileConfig{Kind: soc.TileIO}
		case "spm":
			tiles[i] = soc.TileConfig{Kind: soc.TileSPM}
		case "accel":
			tiles[i] = soc.TileConfig{Kind: soc.TileAccel, Accel: ts.Accel}
		case "accel-nopm":
			tiles[i] = soc.TileConfig{Kind: soc.TileAccelNoPM, Accel: ts.Accel}
		case "", "empty":
			tiles[i] = soc.TileConfig{Kind: soc.TileEmpty}
		default:
			return SoCResult{}, fmt.Errorf("blitzcoin: tile %d has unknown kind %q", i, ts.Kind)
		}
	}

	cfg := soc.Config{
		Name:     o.Name,
		Mesh:     mesh.New(o.W, o.H, o.Torus),
		Tiles:    tiles,
		BudgetMW: o.BudgetMW,
		Scheme:   lookupScheme(o.Scheme),
		Strategy: soc.RelativeProportional,
		Seed:     o.Seed,
	}
	if o.AbsoluteProportional {
		cfg.Strategy = soc.AbsoluteProportional
	}
	if err := cfg.Validate(); err != nil {
		return SoCResult{}, err
	}

	if len(o.Tasks) == 0 {
		return SoCResult{}, fmt.Errorf("blitzcoin: custom SoC needs at least one task")
	}
	g := &workload.Graph{Name: o.Name + "-workload"}
	for i, t := range o.Tasks {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("task-%d", i)
		}
		g.Tasks = append(g.Tasks, workload.Task{
			ID: i, Name: name, Accel: t.Accel, WorkCycles: t.WorkCycles,
			Deps: append([]int(nil), t.Deps...),
		})
	}
	if err := g.Validate(); err != nil {
		return SoCResult{}, err
	}
	if o.Repeat > 1 {
		g = workload.Repeat(g, o.Repeat)
	}
	for _, task := range g.Tasks {
		found := false
		for _, tc := range tiles {
			if tc.Kind == soc.TileAccel && tc.Accel == task.Accel {
				found = true
				break
			}
		}
		if !found {
			return SoCResult{}, fmt.Errorf("blitzcoin: workload needs accelerator %q, absent from the layout", task.Accel)
		}
	}

	res := soc.New(cfg).Run(g)
	return SoCResult{
		SoC:                  res.SoC,
		Scheme:               res.Scheme,
		Strategy:             res.Strategy,
		Workload:             res.Workload,
		Completed:            res.Completed,
		ExecMicros:           res.ExecMicros(),
		MeanResponseMicros:   res.MeanResponseMicros(),
		MedianResponseMicros: res.MedianResponseMicros(),
		MaxResponseMicros:    res.MaxResponseMicros(),
		ResponsesRecorded:    len(res.Responses),
		AvgPowerMW:           res.AvgPowerMW,
		PeakPowerMW:          res.PeakPowerMW,
		BudgetMW:             res.BudgetMW,
		UtilizationPct:       res.UtilizationPct(),
		ActivityChanges:      res.ActivityChanges,
		res:                  res,
	}, nil
}

// RandomWorkload generates a seeded random DAG over the given accelerator
// types, for stress-testing custom platforms.
func RandomWorkload(seed uint64, n int, accels []string, minWork, maxWork float64, maxDeps int) []TaskSpec {
	g := workload.RandomDAG(rng.New(seed), n, accels, minWork, maxWork, maxDeps)
	out := make([]TaskSpec, len(g.Tasks))
	for i, t := range g.Tasks {
		out[i] = TaskSpec{
			Name: t.Name, Accel: t.Accel, WorkCycles: t.WorkCycles,
			Deps: append([]int(nil), t.Deps...),
		}
	}
	return out
}
