# Standard entry points; CI runs `make verify`.

GO ?= go

.PHONY: build test vet race verify bench figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The gate every change must pass: static checks plus the full test suite
# under the race detector.
verify: vet race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

figures:
	$(GO) run ./cmd/blitzsim -fig all
	$(GO) run ./cmd/socsim -fig all
	$(GO) run ./cmd/silicon -fig all
	$(GO) run ./cmd/scaling -fig 21
