# Standard entry points; CI runs `make verify`.

GO ?= go
SHORTSHA := $(shell git rev-parse --short HEAD)
# The committed perf baseline `make benchcheck` gates against. Update it to
# the freshly written BENCH_<sha>.json whenever a PR intentionally shifts
# performance, and commit both.
BENCH_BASELINE ?= BENCH_f33851c.json

.PHONY: build test vet race verify bench benchcheck bench-report figures \
	server-smoke cluster-smoke chaos-smoke stream-smoke tenant-smoke \
	lint fmtcheck blitzlint lint-update lint-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmtcheck is the fast pre-gate: formatting drift fails before the slower
# analyzers run.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: files need formatting:"; echo "$$out"; exit 1; fi

# blitzlint runs the nine domain analyzers: determinism, seedflow,
# hotpathalloc, encapsulation, apilock, goroleak, ctxflow, lockorder,
# errdrop (see DESIGN.md "Static analysis & invariants").
blitzlint:
	$(GO) run ./cmd/blitzlint ./...

# lint is the full static gate: gofmt + vet fast pre-gates, then blitzlint.
lint: fmtcheck vet blitzlint

# lint-smoke drives the real blitzlint binary against the deliberately
# broken module in scripts/lintsmoke and asserts each wave-2 code
# (G/C/L/R) fires exactly once — a silently-disabled analyzer fails here
# even though the clean tree lints green.
lint-smoke:
	sh scripts/lint_smoke.sh

# lint-update regenerates the blitzlint goldens (lint/api_v1.txt,
# lint/escape_allow.txt, lint/lockorder.txt) after a deliberate API,
# hot-path, or lock-nesting change; commit the refreshed files with the
# change that motivated them.
lint-update:
	$(GO) run ./cmd/blitzlint -update

race:
	$(GO) test -race ./...

# The gate every change must pass: static checks (formatting, vet, the
# blitzlint domain analyzers plus the broken-fixture lint smoke), the full
# test suite under the race detector, the hot-path perf gate, and the
# daemon + cluster + chaos + streaming + multi-tenancy smoke tests.
verify: lint lint-smoke race benchcheck server-smoke cluster-smoke chaos-smoke stream-smoke tenant-smoke

# server-smoke boots a real blitzd on an ephemeral port, runs one exchange
# request twice through blitzctl, and asserts the repeat is a cache hit.
server-smoke:
	sh scripts/server_smoke.sh

# cluster-smoke boots a coordinator and two workers, runs a figure through
# the cluster, kills one worker mid-sweep, and diffs the rows against
# single-node execution (must be byte-identical).
cluster-smoke:
	sh scripts/cluster_smoke.sh

# chaos-smoke boots a coordinator and three workers — one fail-slow via
# the -chaos fault plan — runs a fine-grained work-stealing sweep,
# hard-kills a healthy worker mid-sweep, and diffs the rows against
# single-node execution (must be byte-identical despite speculation).
chaos-smoke:
	sh scripts/chaos_smoke.sh

# stream-smoke boots blitzd with a results ledger, follows a figure sweep
# live over SSE through blitzctl -stream, verifies the served result
# against the ledger's Merkle proof (-verify), and hard-kills a subscriber
# mid-stream to prove the daemon is unaffected.
stream-smoke:
	sh scripts/stream_smoke.sh

# tenant-smoke boots blitzd with a two-tenant key file, a store directory,
# and a ledger; asserts 401 for keyless clients and 429 + Retry-After for
# an over-limit tenant while another stays served; then restarts the
# daemon and asserts the sweep is served from disk byte-identically
# (ledger-verified) with zero engine executions.
tenant-smoke:
	sh scripts/tenant_smoke.sh

# bench snapshots the whole benchmark suite (3 samples each) into
# BENCH_<sha>.json; commit the file to extend the perf trajectory.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ -count=3 -benchtime=1x . \
		| $(GO) run ./cmd/benchjson -sha $(SHORTSHA) -goversion "$$($(GO) env GOVERSION)" -out BENCH_$(SHORTSHA).json

# benchcheck fails if either hot path — the 400-tile emulator exchange or
# the full-SoC run — regressed more than 20% in ns/op or allocs/op against
# the committed baseline snapshot; the failure names the offending
# benchmark and metric.
benchcheck:
	$(GO) test -bench='^(BenchmarkExchangeThroughput|BenchmarkSoCRunThroughput)$$' -benchmem -run=^$$ -count=3 . \
		| $(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE) \
			-bench BenchmarkExchangeThroughput,BenchmarkSoCRunThroughput -max-regress 0.20

# bench-report renders the committed BENCH_<sha>.json trajectory (ordered by
# when each snapshot first entered history, then any uncommitted ones) into
# BENCHMARKS.md. Re-run after `make bench` and commit the result.
bench-report:
	@files="$$( (git log --reverse --pretty=format: --name-only --diff-filter=A -- 'BENCH_*.json' | sed '/^$$/d'; ls BENCH_*.json) | awk '!seen[$$0]++')"; \
		$(GO) run ./cmd/benchjson -report $$files > BENCHMARKS.md
	@echo "bench-report: wrote BENCHMARKS.md"

figures:
	$(GO) run ./cmd/blitzsim -fig all
	$(GO) run ./cmd/socsim -fig all
	$(GO) run ./cmd/silicon -fig all
	$(GO) run ./cmd/scaling -fig 21
