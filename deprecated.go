package blitzcoin

// Aliases kept for source compatibility with the pre-daemon API, where the
// fault-schedule types carried an At suffix. New code should use the
// canonical names.

// TileFaultAt is the former name of TileFault.
//
// Deprecated: use TileFault.
type TileFaultAt = TileFault

// LinkFaultAt is the former name of LinkFault.
//
// Deprecated: use LinkFault.
type LinkFaultAt = LinkFault

// SlowFaultAt is the former name of SlowFault.
//
// Deprecated: use SlowFault.
type SlowFaultAt = SlowFault
