package blitzcoin

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// API and engine versioning. Every serialized request and result carries
// both, and the content-addressed cache key of the blitzd daemon folds
// EngineVersion in, so cached rows never outlive the simulator semantics
// that produced them.
const (
	// APIVersion names the wire shape of Request/Result. Bumped on
	// incompatible JSON changes.
	APIVersion = "v1"
	// EngineVersion names the simulation semantics. Bumped whenever a
	// change makes equal options produce different rows, invalidating
	// every previously cached result. (4 added the sharding surface:
	// coordinators refuse workers whose engine disagrees, so mixed-version
	// clusters cannot merge rows from different semantics. 5 marks the
	// elastic work-stealing cluster: duplicate-tolerant MergeShards and
	// the speculation/steal knobs on ClusterOptions. 6 marks the live
	// telemetry surface: ResultMeta gained the LedgerSeq/LedgerRoot
	// provenance fields, so serialized results — and the canonical result
	// SHA the ledger records — differ from engine 5's.)
	EngineVersion = "6"
)

// RequestKind discriminates the payload of a Request.
type RequestKind string

// The request kinds served by Execute (and the blitzd daemon).
const (
	// KindExchange runs SimulateExchange, Trials times with derived seeds.
	KindExchange RequestKind = "exchange"
	// KindSoC runs RunSoC once.
	KindSoC RequestKind = "soc"
	// KindCustomSoC runs RunCustomSoC once.
	KindCustomSoC RequestKind = "custom-soc"
	// KindFigure reproduces one of the paper's figures or tables.
	KindFigure RequestKind = "figure"
)

// Request is the single versioned entry point of the package: one union
// over everything the simulator can compute, serializable as JSON, with
// explicit defaults (Normalized), explicit validation (Validate), and a
// canonical content hash (CanonicalHash) that the blitzd daemon uses as
// its cache key.
//
// Exactly one of the payload pointers must be set; Kind may be left empty
// and is then inferred from the populated payload.
type Request struct {
	// Version is the API version; empty means APIVersion.
	Version string `json:"version,omitempty"`
	// Kind selects the payload. Optional when unambiguous.
	Kind RequestKind `json:"kind,omitempty"`
	// Trials fans an exchange request out into that many trials with
	// derived seeds (seed + trial*7919), aggregated in the sweep result.
	// Default 1. Ignored by the other kinds.
	Trials int `json:"trials,omitempty"`

	Exchange  *ExchangeOptions  `json:"exchange,omitempty"`
	SoC       *SoCOptions       `json:"soc,omitempty"`
	CustomSoC *CustomSoCOptions `json:"custom_soc,omitempty"`
	Figure    *FigureOptions    `json:"figure,omitempty"`
}

// Normalized returns a deep copy with the API version, the inferred kind,
// and every payload default filled in. Normalization is idempotent:
// n.Normalized() == n for any already-normalized n, which is what makes
// CanonicalHash content-addressed rather than spelling-addressed.
func (r Request) Normalized() Request {
	n := r
	if n.Version == "" {
		n.Version = APIVersion
	}
	if n.Kind == "" {
		switch {
		case n.Exchange != nil:
			n.Kind = KindExchange
		case n.SoC != nil:
			n.Kind = KindSoC
		case n.CustomSoC != nil:
			n.Kind = KindCustomSoC
		case n.Figure != nil:
			n.Kind = KindFigure
		}
	}
	if n.Exchange != nil {
		e := n.Exchange.Normalized()
		n.Exchange = &e
	}
	if n.SoC != nil {
		s := n.SoC.Normalized()
		n.SoC = &s
	}
	if n.CustomSoC != nil {
		c := n.CustomSoC.Normalized()
		n.CustomSoC = &c
	}
	if n.Figure != nil {
		f := n.Figure.Normalized()
		n.Figure = &f
	}
	if n.Kind == KindExchange && n.Trials == 0 {
		n.Trials = 1
	}
	if n.Kind != KindExchange {
		n.Trials = 0
	}
	return n
}

// Validate reports whether the request is executable after normalization:
// a supported version, exactly one payload matching the kind, and valid
// payload options.
func (r Request) Validate() error {
	n := r.Normalized()
	if n.Version != APIVersion {
		return fmt.Errorf("blitzcoin: unsupported API version %q (want %q)", n.Version, APIVersion)
	}
	set := 0
	for _, ok := range []bool{n.Exchange != nil, n.SoC != nil, n.CustomSoC != nil, n.Figure != nil} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("blitzcoin: request must carry exactly one payload, has %d", set)
	}
	if n.Trials < 0 {
		return fmt.Errorf("blitzcoin: negative trial count %d", r.Trials)
	}
	switch n.Kind {
	case KindExchange:
		if n.Exchange == nil {
			return fmt.Errorf("blitzcoin: kind %q without exchange options", n.Kind)
		}
		return n.Exchange.Validate()
	case KindSoC:
		if n.SoC == nil {
			return fmt.Errorf("blitzcoin: kind %q without soc options", n.Kind)
		}
		return n.SoC.Validate()
	case KindCustomSoC:
		if n.CustomSoC == nil {
			return fmt.Errorf("blitzcoin: kind %q without custom_soc options", n.Kind)
		}
		return n.CustomSoC.Validate()
	case KindFigure:
		if n.Figure == nil {
			return fmt.Errorf("blitzcoin: kind %q without figure options", n.Kind)
		}
		return n.Figure.Validate()
	}
	return fmt.Errorf("blitzcoin: unknown request kind %q", n.Kind)
}

// Seed returns the seed that drives the request's randomness (the
// payload's seed), for result metadata.
func (r Request) seed() uint64 {
	n := r.Normalized()
	switch {
	case n.Exchange != nil:
		return n.Exchange.Seed
	case n.SoC != nil:
		return n.SoC.Seed
	case n.CustomSoC != nil:
		return n.CustomSoC.Seed
	case n.Figure != nil:
		return n.Figure.Seed
	}
	return 0
}

// CanonicalHash returns the content address of the request: a SHA-256 over
// the canonical JSON of the normalized request plus the API and engine
// versions. Two requests that mean the same computation — regardless of
// which defaults were spelled out — hash identically; any request whose
// results could differ hashes differently. It errors on invalid requests,
// which have no canonical meaning.
func (r Request) CanonicalHash() (string, error) {
	if err := r.Validate(); err != nil {
		return "", err
	}
	n := r.Normalized()
	return canonicalHash(string(n.Kind), n), nil
}

// canonicalHash is the shared hashing scheme: a domain-separation banner
// (API and engine versions plus the payload kind) followed by the
// deterministic JSON encoding of v. encoding/json emits struct fields in
// declaration order, so equal values encode to equal bytes.
func canonicalHash(kind string, v any) string {
	h := sha256.New()
	fmt.Fprintf(h, "blitzcoin:%s:%s:%s\n", APIVersion, EngineVersion, kind)
	b, err := json.Marshal(v)
	if err != nil {
		// Options structs are plain data; this is unreachable for any
		// value constructible from JSON or literals.
		panic(fmt.Sprintf("blitzcoin: canonical encoding failed: %v", err))
	}
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// ExchangeMode selects the exchange technique of Sec. III-B.
type ExchangeMode string

// Exchange techniques.
const (
	OneWay  ExchangeMode = "1-way" // pairwise, round-robin (the preferred embodiment)
	FourWay ExchangeMode = "4-way" // all four neighbors at once
)

// InitDistribution selects the initial coin placement of an exchange
// simulation.
type InitDistribution string

// Initial distributions.
const (
	// InitRandom scatters the pool uniformly at random across tiles.
	InitRandom InitDistribution = "random"
	// InitUniform draws each tile's coins uniformly in [0, max]: per-tile
	// local imbalance.
	InitUniform InitDistribution = "uniform"
	// InitHotspot concentrates the pool in one corner region: the
	// long-range transport case whose convergence shows the O(sqrt(N))
	// scaling.
	InitHotspot InitDistribution = "hotspot"
)

// ExchangeOptions configures SimulateExchange. The zero value is completed
// with the defaults noted per field (see Normalized).
type ExchangeOptions struct {
	// Dim is the mesh dimension d; the SoC has N = Dim*Dim tiles.
	// Default 8.
	Dim int `json:"dim,omitempty"`
	// Torus enables wrap-around neighbors (Sec. III-D). Default as given.
	Torus bool `json:"torus,omitempty"`
	// Mode selects 1-way or 4-way exchange. Default OneWay.
	Mode ExchangeMode `json:"mode,omitempty"`
	// DynamicTiming enables the exponential back-off / acceleration of
	// exchange intervals.
	DynamicTiming bool `json:"dynamic_timing,omitempty"`
	// RandomPairing enables intermittent exchanges with non-neighbors,
	// which eliminates deadlocks (Sec. III-E). Default as given; the
	// paper's experiments enable it.
	RandomPairing bool `json:"random_pairing,omitempty"`
	// RandomPairingEvery is the pairing cadence in exchanges; the paper
	// found once every 16 exchanges sufficient. Default 16.
	RandomPairingEvery int `json:"random_pairing_every,omitempty"`
	// Threshold is the convergence criterion on the mean per-tile error
	// Err. Default 1.5 (Fig. 3).
	Threshold float64 `json:"threshold,omitempty"`
	// Init selects the initial coin placement. Default InitHotspot.
	Init InitDistribution `json:"init,omitempty"`
	// AccelTypes is the number of distinct accelerator types (Fig. 8);
	// 1 means homogeneous. Default 1.
	AccelTypes int `json:"accel_types,omitempty"`
	// TargetPerTile is the mean per-tile coin target. Default 32.
	TargetPerTile int64 `json:"target_per_tile,omitempty"`
	// CoinsPerTile is the mean per-tile pool share. Default
	// TargetPerTile/2.
	CoinsPerTile int64 `json:"coins_per_tile,omitempty"`
	// ThermalCap, when positive, enables the hotspot guard of Sec. III-B:
	// no tile accepts coins that would push its own count plus its
	// neighbors' observed counts above the cap.
	ThermalCap int64 `json:"thermal_cap,omitempty"`
	// Faults, when non-nil and non-empty, injects the given fault model
	// and hardens the protocol against it. Faulted runs go to quiescence
	// (bounded at 400k cycles) instead of stopping at the first threshold
	// crossing, so the result reports the post-audit conservation verdict.
	Faults *FaultOptions `json:"faults,omitempty"`
	// Seed drives all randomness. Runs with equal options and seed are
	// identical.
	Seed uint64 `json:"seed,omitempty"`
}

// DefaultExchangeOptions returns the paper's baseline exchange setup
// (Fig. 3 point, torus, random pairing) with every default spelled out.
func DefaultExchangeOptions() ExchangeOptions {
	return ExchangeOptions{Torus: true, RandomPairing: true}.Normalized()
}

// Normalized returns a copy with every unset field replaced by its
// documented default. Fault options are copied, not shared.
func (o ExchangeOptions) Normalized() ExchangeOptions {
	if o.Dim == 0 {
		o.Dim = 8
	}
	if o.Mode == "" {
		o.Mode = OneWay
	}
	if o.RandomPairingEvery == 0 {
		o.RandomPairingEvery = 16
	}
	if o.Threshold == 0 {
		o.Threshold = 1.5
	}
	if o.Init == "" {
		o.Init = InitHotspot
	}
	if o.AccelTypes == 0 {
		o.AccelTypes = 1
	}
	if o.TargetPerTile == 0 {
		o.TargetPerTile = 32
	}
	if o.CoinsPerTile == 0 {
		o.CoinsPerTile = o.TargetPerTile / 2
	}
	if o.Faults != nil {
		f := o.Faults.clone()
		o.Faults = &f
	}
	return o
}

// Validate reports whether the normalized options describe a runnable
// exchange simulation.
func (o ExchangeOptions) Validate() error {
	o = o.Normalized()
	if o.Dim < 2 {
		return fmt.Errorf("blitzcoin: mesh dimension %d too small", o.Dim)
	}
	if o.Mode != OneWay && o.Mode != FourWay {
		return fmt.Errorf("blitzcoin: unknown exchange mode %q", o.Mode)
	}
	switch o.Init {
	case InitRandom, InitUniform, InitHotspot:
	default:
		return fmt.Errorf("blitzcoin: unknown init distribution %q", o.Init)
	}
	if o.Threshold <= 0 {
		return fmt.Errorf("blitzcoin: non-positive threshold %v", o.Threshold)
	}
	if o.RandomPairingEvery < 1 {
		return fmt.Errorf("blitzcoin: random pairing cadence %d < 1", o.RandomPairingEvery)
	}
	if o.AccelTypes < 1 {
		return fmt.Errorf("blitzcoin: accelerator type count %d < 1", o.AccelTypes)
	}
	if o.TargetPerTile < 1 {
		return fmt.Errorf("blitzcoin: per-tile target %d < 1", o.TargetPerTile)
	}
	if o.CoinsPerTile < 0 {
		return fmt.Errorf("blitzcoin: negative per-tile pool share %d", o.CoinsPerTile)
	}
	if o.ThermalCap < 0 {
		return fmt.Errorf("blitzcoin: negative thermal cap %d", o.ThermalCap)
	}
	return o.Faults.Validate()
}

// Scheme names a power-management scheme for SoC simulations.
type Scheme string

// The implemented schemes.
const (
	BC     Scheme = "BC"     // BlitzCoin: fully decentralized coin exchange
	BCC    Scheme = "BC-C"   // BlitzCoin allocation, centralized controller
	CRR    Scheme = "C-RR"   // centralized round-robin greedy baseline [42]
	TS     Scheme = "TS"     // ring-based TokenSmart [43]
	PT     Scheme = "PT"     // hierarchical price theory [81]
	Static Scheme = "Static" // one-time proportional split, no reallocation
)

// knownScheme reports whether s names an implemented scheme.
func knownScheme(s Scheme) bool {
	switch s {
	case BC, BCC, CRR, TS, PT, Static:
		return true
	}
	return false
}

// Workload names a built-in workload DAG.
type Workload string

// The built-in workloads of the evaluated SoCs (Sec. V-B, Fig. 14).
const (
	// AVParallel: the autonomous-vehicle application with all 3x3-SoC
	// accelerators concurrent (WL-Par).
	AVParallel Workload = "av-parallel"
	// AVDependent: the same application as a dependency DAG (WL-Dep).
	AVDependent Workload = "av-dependent"
	// CVParallel / CVDependent: the 4x4 computer-vision application.
	CVParallel  Workload = "cv-parallel"
	CVDependent Workload = "cv-dependent"
	// Silicon7 / Silicon7Par: the 7-accelerator workload measured on the
	// fabricated 6x6 prototype, dependent and concurrent variants.
	Silicon7    Workload = "silicon-7acc"
	Silicon7Par Workload = "silicon-7acc-par"
)

// knownWorkload reports whether w names a built-in workload.
func knownWorkload(w Workload) bool {
	switch w {
	case AVParallel, AVDependent, CVParallel, CVDependent, Silicon7, Silicon7Par:
		return true
	}
	return false
}

// SoCOptions configures RunSoC. The zero value is completed with the
// defaults noted per field (see Normalized).
type SoCOptions struct {
	// SoC selects the platform: "3x3" (autonomous vehicle), "4x4"
	// (computer vision), or "6x6" (the fabricated prototype with its
	// 10-tile PM cluster). Default "3x3".
	SoC string `json:"soc,omitempty"`
	// Scheme selects the PM scheme. Default BC.
	Scheme Scheme `json:"scheme,omitempty"`
	// BudgetMW is the accelerator power budget. Default: the paper's high
	// budget for the platform (120, 450, or 200 mW).
	BudgetMW float64 `json:"budget_mw,omitempty"`
	// Workload selects the task DAG. Default: the platform's parallel
	// workload.
	Workload Workload `json:"workload,omitempty"`
	// Repeat chains that many frames of the workload back-to-back.
	// Default 3.
	Repeat int `json:"repeat,omitempty"`
	// AbsoluteProportional selects the AP allocation strategy; the
	// default false selects RP, the paper's choice.
	AbsoluteProportional bool `json:"absolute_proportional,omitempty"`
	// Faults, when non-nil and non-empty, injects the given fault model
	// into the SoC: NoC packet faults plus tile kills that fail-stop both
	// a tile's PM datapath and its running task (the task is re-queued on
	// a surviving tile of the same accelerator type). Under the BC scheme
	// the coin-exchange fabric is hardened against the model as well.
	Faults *FaultOptions `json:"faults,omitempty"`
	// Seed drives all randomness.
	Seed uint64 `json:"seed,omitempty"`
}

// DefaultSoCOptions returns the paper's baseline SoC run (3x3, BC,
// high budget, parallel workload) with every default spelled out.
func DefaultSoCOptions() SoCOptions {
	return SoCOptions{}.Normalized()
}

// socPlatformDefaults maps each platform to its paper budget and parallel
// workload.
var socPlatformDefaults = map[string]struct {
	budgetMW float64
	workload Workload
}{
	"3x3": {120, AVParallel},
	"4x4": {450, CVParallel},
	"6x6": {200, Silicon7Par},
}

// Normalized returns a copy with every unset field replaced by its
// documented default. Unknown platforms are left untouched for Validate
// to report. Fault options are copied, not shared.
func (o SoCOptions) Normalized() SoCOptions {
	if o.SoC == "" {
		o.SoC = "3x3"
	}
	if o.Scheme == "" {
		o.Scheme = BC
	}
	if o.Repeat == 0 {
		o.Repeat = 3
	}
	if d, ok := socPlatformDefaults[o.SoC]; ok {
		if o.BudgetMW == 0 {
			o.BudgetMW = d.budgetMW
		}
		if o.Workload == "" {
			o.Workload = d.workload
		}
	}
	if o.Faults != nil {
		f := o.Faults.clone()
		o.Faults = &f
	}
	return o
}

// Validate reports whether the normalized options describe a runnable SoC
// simulation. Workload/platform accelerator mismatches surface from the
// run itself, not here.
func (o SoCOptions) Validate() error {
	o = o.Normalized()
	if _, ok := socPlatformDefaults[o.SoC]; !ok {
		return fmt.Errorf("blitzcoin: unknown SoC %q", o.SoC)
	}
	if !knownScheme(o.Scheme) {
		return fmt.Errorf("blitzcoin: unknown scheme %q", o.Scheme)
	}
	if !knownWorkload(o.Workload) {
		return fmt.Errorf("blitzcoin: unknown workload %q", o.Workload)
	}
	if o.BudgetMW <= 0 {
		return fmt.Errorf("blitzcoin: non-positive budget %v mW", o.BudgetMW)
	}
	if o.Repeat < 1 {
		return fmt.Errorf("blitzcoin: repeat count %d < 1", o.Repeat)
	}
	return o.Faults.Validate()
}

// TileSpec places one tile on a custom SoC grid. Kind is one of "cpu",
// "mem", "io", "spm", "accel", or "accel-nopm"; Accel names the
// accelerator type for the accel kinds (FFT, Viterbi, NVDLA, GEMM, Conv2D,
// Vision).
type TileSpec struct {
	Kind  string `json:"kind,omitempty"`
	Accel string `json:"accel,omitempty"`
}

// TaskSpec is one task of a custom workload DAG. Deps index earlier tasks.
type TaskSpec struct {
	Name       string  `json:"name,omitempty"`
	Accel      string  `json:"accel"`
	WorkCycles float64 `json:"work_cycles"`
	Deps       []int   `json:"deps,omitempty"`
}

// CustomSoCOptions describes a user-defined platform and workload: lay out
// any WxH grid of tiles, supply any DAG over the modeled accelerators, and
// run it under any of the implemented PM schemes. This is the
// build-your-own entry point a downstream user starts from when their SoC
// is not one of the paper's three.
type CustomSoCOptions struct {
	Name string `json:"name,omitempty"`
	// W, H are the grid dimensions; Tiles lists W*H tile placements in
	// row-major order.
	W     int        `json:"w"`
	H     int        `json:"h"`
	Tiles []TileSpec `json:"tiles"`
	// Torus enables wrap-around neighbor semantics (the paper's choice).
	Torus bool `json:"torus,omitempty"`

	BudgetMW float64 `json:"budget_mw"`
	Scheme   Scheme  `json:"scheme,omitempty"`
	// AbsoluteProportional selects AP allocation; default is RP.
	AbsoluteProportional bool `json:"absolute_proportional,omitempty"`

	// Tasks defines the workload; Repeat chains frames (default 1).
	Tasks  []TaskSpec `json:"tasks"`
	Repeat int        `json:"repeat,omitempty"`

	Seed uint64 `json:"seed,omitempty"`
}

// Normalized returns a copy with the documented defaults filled in.
func (o CustomSoCOptions) Normalized() CustomSoCOptions {
	if o.Name == "" && o.W > 0 && o.H > 0 {
		o.Name = fmt.Sprintf("custom-%dx%d", o.W, o.H)
	}
	if o.Scheme == "" {
		o.Scheme = BC
	}
	if o.Repeat == 0 {
		o.Repeat = 1
	}
	return o
}

// Validate reports whether the layout and workload assemble into a
// runnable platform: grid and tile list consistent, tile kinds and
// accelerators known, the DAG acyclic, and every task's accelerator
// present in the layout.
func (o CustomSoCOptions) Validate() error {
	_, _, err := o.build()
	return err
}

// FaultOptions declares a deterministic fault model for a simulation: random
// per-packet faults on the PM plane (drop, duplicate, delay) plus scheduled
// structural faults (tile fail-stop, stuck coin counters, fail-slow tiles,
// fail-stop links). The zero value injects nothing. Supplying a non-nil
// enabled model automatically hardens the exchange protocol — timeouts with
// retry, lock watchdog, dead-neighbor pruning, and a periodic coin-
// conservation audit — so the run survives the injected damage. A given
// (FaultOptions, Seed) pair reproduces a bit-identical fault schedule.
type FaultOptions struct {
	// Seed drives the per-packet random faults, independently of the
	// simulation seed.
	Seed uint64 `json:"seed,omitempty"`
	// DropRate, DupRate and DelayRate are per-packet probabilities on the
	// PM plane (plane 5).
	DropRate  float64 `json:"drop_rate,omitempty"`
	DupRate   float64 `json:"dup_rate,omitempty"`
	DelayRate float64 `json:"delay_rate,omitempty"`
	// DelayMaxCycles bounds the extra delivery delay; 0 selects 64 cycles.
	DelayMaxCycles uint64 `json:"delay_max_cycles,omitempty"`

	// KillTiles fail-stops tiles: the tile's PM logic dies and packets
	// addressed to it vanish.
	KillTiles []TileFault `json:"kill_tiles,omitempty"`
	// StuckCounters freeze tiles' coin registers, silently leaking or
	// duplicating coins until the conservation audit repairs the pool.
	StuckCounters []TileFault `json:"stuck_counters,omitempty"`
	// FailSlow stretches tiles' exchange cadence by a factor.
	FailSlow []SlowFault `json:"fail_slow,omitempty"`
	// FailLinks fail-stops mesh links.
	FailLinks []LinkFault `json:"fail_links,omitempty"`
}

// TileFault schedules a per-tile fault activation at an absolute
// simulation time in NoC cycles.
type TileFault struct {
	Tile    int    `json:"tile"`
	AtCycle uint64 `json:"at_cycle,omitempty"`
}

// LinkFault schedules a fail-stop of the mesh link between two adjacent
// tiles; both directions fail.
type LinkFault struct {
	A       int    `json:"a"`
	B       int    `json:"b"`
	AtCycle uint64 `json:"at_cycle,omitempty"`
}

// SlowFault schedules a fail-slow activation: from AtCycle on, the
// tile's exchange FSM runs Factor (> 1) times slower.
type SlowFault struct {
	Tile    int     `json:"tile"`
	AtCycle uint64  `json:"at_cycle,omitempty"`
	Factor  float64 `json:"factor"`
}

// clone returns a deep copy so normalization never aliases the caller's
// schedule slices.
func (o FaultOptions) clone() FaultOptions {
	o.KillTiles = append([]TileFault(nil), o.KillTiles...)
	o.StuckCounters = append([]TileFault(nil), o.StuckCounters...)
	o.FailSlow = append([]SlowFault(nil), o.FailSlow...)
	o.FailLinks = append([]LinkFault(nil), o.FailLinks...)
	return o
}

// Validate reports whether the fault model is well-formed: probabilities
// in [0,1], slow-down factors above 1, non-negative tile indices, and
// links between distinct tiles. A nil model is valid (no injection).
func (o *FaultOptions) Validate() error {
	if o == nil {
		return nil
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"drop", o.DropRate}, {"dup", o.DupRate}, {"delay", o.DelayRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("blitzcoin: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	for _, f := range o.KillTiles {
		if f.Tile < 0 {
			return fmt.Errorf("blitzcoin: negative kill-tile index %d", f.Tile)
		}
	}
	for _, f := range o.StuckCounters {
		if f.Tile < 0 {
			return fmt.Errorf("blitzcoin: negative stuck-counter tile index %d", f.Tile)
		}
	}
	for _, f := range o.FailSlow {
		if f.Tile < 0 {
			return fmt.Errorf("blitzcoin: negative fail-slow tile index %d", f.Tile)
		}
		if f.Factor <= 1 {
			return fmt.Errorf("blitzcoin: fail-slow factor %v must exceed 1", f.Factor)
		}
	}
	for _, f := range o.FailLinks {
		if f.A < 0 || f.B < 0 || f.A == f.B {
			return fmt.Errorf("blitzcoin: invalid link fault %d-%d", f.A, f.B)
		}
	}
	return nil
}
