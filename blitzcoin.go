// Package blitzcoin is a Go reproduction of "BlitzCoin: Fully Decentralized
// Hardware Power Management for Accelerator-Rich SoCs" (ISCA 2024).
//
// BlitzCoin manages the power budget of a many-accelerator system-on-chip
// without any central controller: each tile holds an integer number of
// power units ("coins") and repeatedly performs pairwise exchanges with its
// mesh neighbors that equalize every tile's has/max ratio while conserving
// the total pool. The budget therefore diffuses to the target allocation
// with a response time that scales as O(sqrt(N)) instead of the O(N) of
// centralized controllers, enabling SoCs with hundreds of accelerators.
//
// The package exposes three layers:
//
//   - SimulateExchange runs the coin-exchange algorithm itself on a
//     simulated 2D-mesh NoC (the paper's Sec. III experiments);
//   - RunSoC runs full-system simulations: accelerator tiles with
//     power/frequency characterizations and UVFR regulators executing
//     workload DAGs under BlitzCoin or one of the baseline controllers
//     (Secs. V-VI);
//   - FitScaling / ScalingModel project response times and maximum
//     supported SoC sizes analytically (Sec. V-E, Fig. 21).
//
// Everything is deterministic for a given Seed. All times are reported in
// NoC cycles (800 MHz, 1.25 ns) and microseconds.
package blitzcoin

import (
	"fmt"

	"blitzcoin/internal/coin"
	"blitzcoin/internal/mesh"
	"blitzcoin/internal/rng"
	"blitzcoin/internal/scaling"
	"blitzcoin/internal/sim"
)

// ExchangeMode selects the exchange technique of Sec. III-B.
type ExchangeMode string

// Exchange techniques.
const (
	OneWay  ExchangeMode = "1-way" // pairwise, round-robin (the preferred embodiment)
	FourWay ExchangeMode = "4-way" // all four neighbors at once
)

// InitDistribution selects the initial coin placement of an exchange
// simulation.
type InitDistribution string

// Initial distributions.
const (
	// InitRandom scatters the pool uniformly at random across tiles.
	InitRandom InitDistribution = "random"
	// InitUniform draws each tile's coins uniformly in [0, max]: per-tile
	// local imbalance.
	InitUniform InitDistribution = "uniform"
	// InitHotspot concentrates the pool in one corner region: the
	// long-range transport case whose convergence shows the O(sqrt(N))
	// scaling.
	InitHotspot InitDistribution = "hotspot"
)

// ExchangeOptions configures SimulateExchange. The zero value is completed
// with the defaults noted per field.
type ExchangeOptions struct {
	// Dim is the mesh dimension d; the SoC has N = Dim*Dim tiles.
	// Default 8.
	Dim int
	// Torus enables wrap-around neighbors (Sec. III-D). Default as given.
	Torus bool
	// Mode selects 1-way or 4-way exchange. Default OneWay.
	Mode ExchangeMode
	// DynamicTiming enables the exponential back-off / acceleration of
	// exchange intervals.
	DynamicTiming bool
	// RandomPairing enables intermittent exchanges with non-neighbors,
	// which eliminates deadlocks (Sec. III-E). Default as given; the
	// paper's experiments enable it.
	RandomPairing bool
	// RandomPairingEvery is the pairing cadence in exchanges; the paper
	// found once every 16 exchanges sufficient. Default 16.
	RandomPairingEvery int
	// Threshold is the convergence criterion on the mean per-tile error
	// Err. Default 1.5 (Fig. 3).
	Threshold float64
	// Init selects the initial coin placement. Default InitHotspot.
	Init InitDistribution
	// AccelTypes is the number of distinct accelerator types (Fig. 8);
	// 1 means homogeneous. Default 1.
	AccelTypes int
	// TargetPerTile is the mean per-tile coin target. Default 32.
	TargetPerTile int64
	// CoinsPerTile is the mean per-tile pool share. Default
	// TargetPerTile/2.
	CoinsPerTile int64
	// ThermalCap, when positive, enables the hotspot guard of Sec. III-B:
	// no tile accepts coins that would push its own count plus its
	// neighbors' observed counts above the cap.
	ThermalCap int64
	// Faults, when non-nil and non-empty, injects the given fault model
	// and hardens the protocol against it. Faulted runs go to quiescence
	// (bounded at 400k cycles) instead of stopping at the first threshold
	// crossing, so the result reports the post-audit conservation verdict.
	Faults *FaultOptions
	// Seed drives all randomness. Runs with equal options and seed are
	// identical.
	Seed uint64
}

// ExchangeResult reports one exchange simulation.
type ExchangeResult struct {
	// Converged reports whether Err crossed the threshold.
	Converged bool
	// ConvergenceCycles and ConvergenceMicros time the first crossing.
	ConvergenceCycles uint64
	ConvergenceMicros float64
	// PacketsToConvergence counts NoC packets up to the crossing.
	PacketsToConvergence uint64
	// StartErr and FinalErr are the mean per-tile errors at the start and
	// end of the run; WorstTileErr is the largest residual per-tile error.
	StartErr, FinalErr, WorstTileErr float64
	// TotalPackets and Exchanges count all activity during the run.
	TotalPackets, Exchanges uint64
	// ThermalRejects counts exchanges clamped by the hotspot guard.
	ThermalRejects uint64
	// CoinsConserved confirms every coin of the initial pool ended
	// accounted for on a live tile (after audit repair, under faults).
	CoinsConserved bool

	// Fault and recovery counters (all zero on a healthy run).
	Dropped         uint64 // PM-plane packets lost in the fabric
	Retries         uint64 // exchanges abandoned by timeout and retried
	LocksBroken     uint64 // participation locks freed by the watchdog
	NeighborsPruned int    // partners removed from pairing sets as dead
	TilesDead       int    // tiles fail-stopped during the run
	AuditRepairs    uint64 // audits that found and repaired a discrepancy
	PoolViolation   int64  // unrepaired pool residue at the end of the run
}

// SimulateExchange runs the BlitzCoin coin-exchange algorithm on a
// simulated 2D-mesh NoC and reports its convergence behavior. It panics on
// invalid options (negative dimensions, unknown mode).
func SimulateExchange(o ExchangeOptions) ExchangeResult {
	if o.Dim == 0 {
		o.Dim = 8
	}
	if o.Dim < 2 {
		panic(fmt.Sprintf("blitzcoin: mesh dimension %d too small", o.Dim))
	}
	if o.Mode == "" {
		o.Mode = OneWay
	}
	if o.Threshold == 0 {
		o.Threshold = 1.5
	}
	if o.Init == "" {
		o.Init = InitHotspot
	}
	if o.AccelTypes == 0 {
		o.AccelTypes = 1
	}
	if o.TargetPerTile == 0 {
		o.TargetPerTile = 32
	}
	if o.CoinsPerTile == 0 {
		o.CoinsPerTile = o.TargetPerTile / 2
	}

	cfg := coin.Config{
		Mesh:               mesh.Square(o.Dim, o.Torus),
		RefreshInterval:    32,
		DynamicTiming:      o.DynamicTiming,
		RandomPairing:      o.RandomPairing,
		RandomPairingEvery: o.RandomPairingEvery,
		Threshold:          o.Threshold,
		ThermalCap:         o.ThermalCap,
		StopAtConvergence:  true,
		Faults:             o.Faults.toInternal(),
	}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		cfg.StopAtConvergence = false
		cfg.MaxCycles = 400_000
	}
	switch o.Mode {
	case OneWay:
		cfg.Mode = coin.OneWay
	case FourWay:
		cfg.Mode = coin.FourWay
	default:
		panic(fmt.Sprintf("blitzcoin: unknown exchange mode %q", o.Mode))
	}

	src := rng.New(o.Seed)
	n := cfg.Mesh.N()
	var maxes []int64
	if o.AccelTypes > 1 {
		maxes = coin.HeterogeneousMaxes(src, n, o.AccelTypes, o.TargetPerTile/int64(o.AccelTypes)+1)
	} else {
		maxes = coin.UniformMaxes(n, o.TargetPerTile)
	}
	pool := int64(n) * o.CoinsPerTile
	var a coin.Assignment
	switch o.Init {
	case InitRandom:
		a = coin.RandomAssignment(src, maxes, pool)
	case InitUniform:
		a = coin.UniformRandomAssignment(src, maxes)
	case InitHotspot:
		a = coin.HotspotAssignment(src, maxes, pool)
	default:
		panic(fmt.Sprintf("blitzcoin: unknown init distribution %q", o.Init))
	}

	e := coin.NewEmulator(cfg, src)
	e.Init(a)
	res := e.Run()
	return ExchangeResult{
		Converged:            res.Converged,
		ConvergenceCycles:    res.ConvergenceCycles,
		ConvergenceMicros:    res.ConvergenceMicros(),
		PacketsToConvergence: res.PacketsToConvergence,
		StartErr:             res.StartErr,
		FinalErr:             res.FinalErr,
		WorstTileErr:         res.WorstTileErr,
		TotalPackets:         res.TotalPackets,
		Exchanges:            res.Exchanges,
		ThermalRejects:       e.ThermalRejects(),
		CoinsConserved:       res.Conserved(),
		Dropped:              res.Dropped,
		Retries:              res.Retries,
		LocksBroken:          res.LocksBroken,
		NeighborsPruned:      res.NbrsPruned,
		TilesDead:            res.TilesDead,
		AuditRepairs:         res.AuditRepairs,
		PoolViolation:        res.PoolViolation,
	}
}

// ScalingModel is a fitted response-time law T(N) for one PM scheme
// (Sec. V-E).
type ScalingModel struct {
	// Name is the scheme ("BC", "BC-C", "C-RR", "TS", "PT", "SW").
	Name string
	// Law is "O(N)" or "O(sqrt(N))".
	Law string
	// TauMicros is the fitted scaling constant.
	TauMicros float64
}

// Response returns the projected response time in microseconds for an
// N-accelerator SoC.
func (m ScalingModel) Response(n float64) float64 {
	return m.toInternal().Response(n)
}

// NMax returns the largest supported accelerator count for a workload phase
// duration of twMicros (Eqs. 5.1-5.3).
func (m ScalingModel) NMax(twMicros float64) float64 {
	return m.toInternal().NMax(twMicros)
}

// OverheadFraction returns the share of wall-clock time spent in power
// management at (n, twMicros); above 1 the scheme cannot keep up.
func (m ScalingModel) OverheadFraction(n, twMicros float64) float64 {
	return m.toInternal().OverheadFraction(n, twMicros)
}

func (m ScalingModel) toInternal() scaling.Model {
	law := scaling.Linear
	if m.Law == scaling.Sqrt.String() {
		law = scaling.Sqrt
	}
	return scaling.Model{Name: m.Name, Law: law, Tau: m.TauMicros}
}

// PaperScalingModels returns the models with the paper's fitted constants
// (Sec. VI-D: tau_BC = 0.20 us, tau_BCC = 0.66 us, tau_CRR = 0.96 us,
// tau_TS = 0.22 us).
func PaperScalingModels() []ScalingModel {
	var out []ScalingModel
	for _, name := range []string{"BC", "BC-C", "C-RR", "TS", "PT", "SW"} {
		m := scaling.PaperModels()[name]
		out = append(out, ScalingModel{Name: m.Name, Law: m.Law.String(), TauMicros: m.Tau})
	}
	return out
}

// FitScaling fits a response-time law through measured (N, microseconds)
// points; law must be "O(N)" or "O(sqrt(N))".
func FitScaling(name, law string, ns, responsesUs []float64) ScalingModel {
	if len(ns) != len(responsesUs) || len(ns) == 0 {
		panic("blitzcoin: FitScaling needs matching non-empty slices")
	}
	var l scaling.Law
	switch law {
	case "O(N)":
		l = scaling.Linear
	case "O(sqrt(N))":
		l = scaling.Sqrt
	default:
		panic(fmt.Sprintf("blitzcoin: unknown law %q", law))
	}
	pts := make([]scaling.Point, len(ns))
	for i := range ns {
		pts[i] = scaling.Point{N: ns[i], Response: responsesUs[i]}
	}
	m := scaling.Fit(name, l, pts)
	return ScalingModel{Name: m.Name, Law: m.Law.String(), TauMicros: m.Tau}
}

// CyclesToMicros converts NoC cycles (800 MHz) to microseconds.
func CyclesToMicros(c uint64) float64 { return sim.CyclesToMicros(c) }
