// Package blitzcoin is a Go reproduction of "BlitzCoin: Fully Decentralized
// Hardware Power Management for Accelerator-Rich SoCs" (ISCA 2024).
//
// BlitzCoin manages the power budget of a many-accelerator system-on-chip
// without any central controller: each tile holds an integer number of
// power units ("coins") and repeatedly performs pairwise exchanges with its
// mesh neighbors that equalize every tile's has/max ratio while conserving
// the total pool. The budget therefore diffuses to the target allocation
// with a response time that scales as O(sqrt(N)) instead of the O(N) of
// centralized controllers, enabling SoCs with hundreds of accelerators.
//
// The package exposes one unified options surface and three layers beneath
// it:
//
//   - Request / Execute is the versioned entry point: a JSON-serializable
//     union over every computation the simulator offers (exchange sweeps,
//     SoC runs, custom platforms, figure reproductions), with explicit
//     defaults (Normalized), explicit validation (Validate), and a
//     canonical content hash (CanonicalHash) that the blitzd daemon keys
//     its result cache on;
//   - SimulateExchange runs the coin-exchange algorithm itself on a
//     simulated 2D-mesh NoC (the paper's Sec. III experiments);
//   - RunSoC / RunCustomSoC run full-system simulations: accelerator tiles
//     with power/frequency characterizations and UVFR regulators executing
//     workload DAGs under BlitzCoin or one of the baseline controllers
//     (Secs. V-VI);
//   - FitScaling / ScalingModel project response times and maximum
//     supported SoC sizes analytically (Sec. V-E, Fig. 21).
//
// Everything is deterministic for a given Seed. All times are reported in
// NoC cycles (800 MHz, 1.25 ns) and microseconds.
package blitzcoin

import (
	"fmt"

	"blitzcoin/internal/power"
	"blitzcoin/internal/scaling"
	"blitzcoin/internal/sim"
)

// ScalingModel is a fitted response-time law T(N) for one PM scheme
// (Sec. V-E).
type ScalingModel struct {
	// Name is the scheme ("BC", "BC-C", "C-RR", "TS", "PT", "SW").
	Name string `json:"name"`
	// Law is "O(N)" or "O(sqrt(N))".
	Law string `json:"law"`
	// TauMicros is the fitted scaling constant.
	TauMicros float64 `json:"tau_micros"`
}

// Response returns the projected response time in microseconds for an
// N-accelerator SoC.
func (m ScalingModel) Response(n float64) float64 {
	return m.toInternal().Response(n)
}

// NMax returns the largest supported accelerator count for a workload phase
// duration of twMicros (Eqs. 5.1-5.3).
func (m ScalingModel) NMax(twMicros float64) float64 {
	return m.toInternal().NMax(twMicros)
}

// OverheadFraction returns the share of wall-clock time spent in power
// management at (n, twMicros); above 1 the scheme cannot keep up.
func (m ScalingModel) OverheadFraction(n, twMicros float64) float64 {
	return m.toInternal().OverheadFraction(n, twMicros)
}

func (m ScalingModel) toInternal() scaling.Model {
	law := scaling.Linear
	if m.Law == scaling.Sqrt.String() {
		law = scaling.Sqrt
	}
	return scaling.Model{Name: m.Name, Law: law, Tau: m.TauMicros}
}

// PaperScalingModels returns the models with the paper's fitted constants
// (Sec. VI-D: tau_BC = 0.20 us, tau_BCC = 0.66 us, tau_CRR = 0.96 us,
// tau_TS = 0.22 us).
func PaperScalingModels() []ScalingModel {
	var out []ScalingModel
	for _, name := range []string{"BC", "BC-C", "C-RR", "TS", "PT", "SW"} {
		m := scaling.PaperModels()[name]
		out = append(out, ScalingModel{Name: m.Name, Law: m.Law.String(), TauMicros: m.Tau})
	}
	return out
}

// FitScaling fits a response-time law through measured (N, microseconds)
// points; law must be "O(N)" or "O(sqrt(N))".
func FitScaling(name, law string, ns, responsesUs []float64) ScalingModel {
	if len(ns) != len(responsesUs) || len(ns) == 0 {
		panic("blitzcoin: FitScaling needs matching non-empty slices")
	}
	var l scaling.Law
	switch law {
	case "O(N)":
		l = scaling.Linear
	case "O(sqrt(N))":
		l = scaling.Sqrt
	default:
		panic(fmt.Sprintf("blitzcoin: unknown law %q", law))
	}
	pts := make([]scaling.Point, len(ns))
	for i := range ns {
		pts[i] = scaling.Point{N: ns[i], Response: responsesUs[i]}
	}
	m := scaling.Fit(name, l, pts)
	return ScalingModel{Name: m.Name, Law: m.Law.String(), TauMicros: m.Tau}
}

// CyclesToMicros converts NoC cycles (800 MHz) to microseconds.
func CyclesToMicros(c uint64) float64 { return sim.CyclesToMicros(c) }

// AcceleratorPoint is one DVFS operating point of an accelerator's
// characterization (Fig. 13).
type AcceleratorPoint struct {
	V    float64 `json:"v"`     // supply voltage (V)
	FMHz float64 `json:"f_mhz"` // maximum frequency at V
	PmW  float64 `json:"p_mw"`  // power at that point
}

// AcceleratorCurve returns the power/frequency characterization of one of
// the six modeled accelerators: FFT, Viterbi, NVDLA, GEMM, Conv2D, Vision.
func AcceleratorCurve(name string) ([]AcceleratorPoint, error) {
	c, ok := power.Catalog()[name]
	if !ok {
		return nil, fmt.Errorf("blitzcoin: unknown accelerator %q", name)
	}
	out := make([]AcceleratorPoint, len(c.Points))
	for i, p := range c.Points {
		out[i] = AcceleratorPoint{V: p.V, FMHz: p.FMHz, PmW: p.PmW}
	}
	return out, nil
}
