package blitzcoin

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// roundTrip marshals v, unmarshals into a fresh value of the same type,
// re-marshals, and requires byte-identical JSON — the serialization
// contract behind the blitzd cache.
func roundTrip(t *testing.T, v any) {
	t.Helper()
	b1, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	fresh := reflect.New(reflect.TypeOf(v))
	if err := json.Unmarshal(b1, fresh.Interface()); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	b2, err := json.Marshal(fresh.Elem().Interface())
	if err != nil {
		t.Fatalf("re-marshal %T: %v", v, err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("%T round trip drifted:\n  %s\nvs\n  %s", v, b1, b2)
	}
}

func TestOptionsJSONRoundTrip(t *testing.T) {
	faults := &FaultOptions{
		Seed: 3, DropRate: 0.01, DupRate: 0.002, DelayRate: 0.05, DelayMaxCycles: 128,
		KillTiles:     []TileFault{{Tile: 7, AtCycle: 1000}},
		StuckCounters: []TileFault{{Tile: 2, AtCycle: 500}},
		FailSlow:      []SlowFault{{Tile: 1, AtCycle: 200, Factor: 4}},
		FailLinks:     []LinkFault{{A: 0, B: 1, AtCycle: 300}},
	}
	for _, v := range []any{
		DefaultExchangeOptions(),
		ExchangeOptions{Dim: 10, Torus: true, Mode: FourWay, DynamicTiming: true,
			RandomPairing: true, Threshold: 1.0, Init: InitUniform, AccelTypes: 4,
			TargetPerTile: 16, CoinsPerTile: 8, ThermalCap: 40, Faults: faults, Seed: 9},
		DefaultSoCOptions(),
		SoCOptions{SoC: "4x4", Scheme: CRR, BudgetMW: 300, Workload: CVDependent,
			Repeat: 2, AbsoluteProportional: true, Faults: faults, Seed: 5},
		CustomSoCOptions{Name: "x", W: 2, H: 2, Tiles: []TileSpec{{Kind: "cpu"}, {Kind: "accel", Accel: "FFT"}, {Kind: "mem"}, {Kind: "io"}},
			BudgetMW: 50, Scheme: BC, Tasks: []TaskSpec{{Name: "t", Accel: "FFT", WorkCycles: 1e4}}, Seed: 2},
		*faults,
		FigureOptions{Name: "7", Trials: 10, Seed: 2, Ns: []int{100}},
		Request{Kind: KindExchange, Trials: 3, Exchange: &ExchangeOptions{Seed: 1}},
		ScalingModel{Name: "BC", Law: "O(sqrt(N))", TauMicros: 0.2},
		AcceleratorPoint{V: 0.6, FMHz: 400, PmW: 11},
		CPUActivityWindow{Cycles: 1000, Instr: 800, MemOps: 100, FPOps: 50, BranchMiss: 5},
	} {
		roundTrip(t, v)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	ex := SimulateExchange(ExchangeOptions{Dim: 4, Torus: true, RandomPairing: true, Seed: 1})
	roundTrip(t, ex)

	sr := RunSoC(SoCOptions{Repeat: 1, Seed: 1})
	roundTrip(t, sr)

	res, err := Execute(context.Background(), Request{Trials: 2, Exchange: &ExchangeOptions{Dim: 4, Torus: true, RandomPairing: true, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, *res)
	roundTrip(t, *res.Exchange)

	fig, err := RunFigure(context.Background(), FigureOptions{Name: "13"})
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, fig)
	roundTrip(t, CompareDroop(600, 0.04))
}

func TestResultMetaSelfDescribing(t *testing.T) {
	o := ExchangeOptions{Dim: 4, Torus: true, RandomPairing: true, Seed: 42}
	r := SimulateExchange(o)
	if r.Meta.EngineVersion != EngineVersion || r.Meta.APIVersion != APIVersion {
		t.Fatalf("meta versions: %+v", r.Meta)
	}
	if r.Meta.Seed != 42 {
		t.Fatalf("meta seed = %d", r.Meta.Seed)
	}
	if r.Meta.OptionsHash == "" {
		t.Fatal("meta options hash empty")
	}
	// Spelled-out defaults hash identically to elided ones.
	spelled := o.Normalized()
	if r2 := SimulateExchange(spelled); r2.Meta.OptionsHash != r.Meta.OptionsHash {
		t.Fatalf("normalization changed the hash: %s vs %s", r.Meta.OptionsHash, r2.Meta.OptionsHash)
	}
	// Different options hash differently.
	o.Dim = 6
	if r3 := SimulateExchange(o); r3.Meta.OptionsHash == r.Meta.OptionsHash {
		t.Fatal("distinct options share a hash")
	}

	s := RunSoC(SoCOptions{Repeat: 1, Seed: 7})
	if s.Meta.Seed != 7 || s.Meta.OptionsHash == "" || s.Meta.EngineVersion != EngineVersion {
		t.Fatalf("soc meta: %+v", s.Meta)
	}
}

func TestRequestNormalizeAndValidate(t *testing.T) {
	r := Request{Exchange: &ExchangeOptions{Seed: 1}}
	n := r.Normalized()
	if n.Kind != KindExchange || n.Version != APIVersion || n.Trials != 1 {
		t.Fatalf("normalized: %+v", n)
	}
	if n.Exchange.Dim != 8 || n.Exchange.Threshold != 1.5 || n.Exchange.CoinsPerTile != 16 {
		t.Fatalf("payload defaults not applied: %+v", n.Exchange)
	}
	// Idempotent.
	if !reflect.DeepEqual(n.Normalized(), n) {
		t.Fatal("Normalized not idempotent")
	}
	// The original request is untouched.
	if r.Exchange.Dim != 0 || r.Kind != "" {
		t.Fatalf("Normalized mutated its receiver: %+v", r)
	}

	for name, bad := range map[string]Request{
		"empty":        {},
		"two payloads": {Exchange: &ExchangeOptions{}, SoC: &SoCOptions{}},
		"kind mismatch": {Kind: KindSoC,
			Exchange: &ExchangeOptions{}},
		"bad version":  {Version: "v9", Exchange: &ExchangeOptions{}},
		"bad payload":  {Exchange: &ExchangeOptions{Dim: 1}},
		"bad figure":   {Figure: &FigureOptions{Name: "99"}},
		"bad soc":      {SoC: &SoCOptions{SoC: "9x9"}},
		"bad workload": {SoC: &SoCOptions{Workload: "crypto-mining"}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: no validation error", name)
		}
	}
	if err := (Request{Kind: KindExchange, Exchange: &ExchangeOptions{}}).Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
}

func TestCanonicalHashNormalizationInvariant(t *testing.T) {
	bare := Request{Exchange: &ExchangeOptions{Seed: 1}}
	spelled := bare.Normalized()
	h1, err := bare.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := spelled.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("defaults changed the hash: %s vs %s", h1, h2)
	}
	other := Request{Exchange: &ExchangeOptions{Seed: 2}}
	h3, err := other.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("different seeds share a hash")
	}
	if _, err := (Request{}).CanonicalHash(); err == nil {
		t.Fatal("invalid request hashed")
	}
}

func TestExecuteExchangeSweep(t *testing.T) {
	req := Request{Trials: 3, Exchange: &ExchangeOptions{Dim: 4, Torus: true, RandomPairing: true, Seed: 1}}
	res, err := Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindExchange || res.Exchange == nil {
		t.Fatalf("wrong result shape: %+v", res)
	}
	sw := res.Exchange
	if sw.Trials != 3 || len(sw.Rows) != 3 {
		t.Fatalf("trials: %d rows: %d", sw.Trials, len(sw.Rows))
	}
	if sw.Converged == 0 || sw.MeanConvergenceMicros <= 0 {
		t.Fatalf("sweep did not converge: %+v", sw)
	}
	// Trial seeds are derived, so rows differ but are each reproducible.
	if sw.Rows[0].Meta.Seed == sw.Rows[1].Meta.Seed {
		t.Fatal("trial seeds not derived")
	}
	direct := SimulateExchange(ExchangeOptions{Dim: 4, Torus: true, RandomPairing: true, Seed: 1 + 7919})
	if direct != sw.Rows[1] {
		t.Fatal("sweep row differs from direct simulation")
	}
}

func TestExecuteValidatesAndRecovers(t *testing.T) {
	ctx := context.Background()
	if _, err := Execute(ctx, Request{}); err == nil {
		t.Fatal("empty request executed")
	}
	if _, err := Execute(ctx, Request{SoC: &SoCOptions{SoC: "9x9"}}); err == nil {
		t.Fatal("bad platform executed")
	}
	// A validation-clean request whose workload needs accelerators the
	// platform lacks panics internally; Execute must surface an error.
	_, err := Execute(ctx, Request{SoC: &SoCOptions{SoC: "3x3", Workload: CVParallel, Repeat: 1}})
	if err == nil || !strings.Contains(err.Error(), "blitzcoin") {
		t.Fatalf("panic not converted: %v", err)
	}
}

func TestExecuteSoCAndFigure(t *testing.T) {
	ctx := context.Background()
	res, err := Execute(ctx, Request{SoC: &SoCOptions{Repeat: 1, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindSoC || res.SoC == nil || !res.SoC.Completed {
		t.Fatalf("soc result: %+v", res)
	}
	if res.SoC.Meta.OptionsHash == "" {
		t.Fatal("soc result missing request hash")
	}

	fig, err := Execute(ctx, Request{Figure: &FigureOptions{Name: "13"}})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Kind != KindFigure || fig.Figure == nil || len(fig.Figure.Lines) == 0 {
		t.Fatalf("figure result: %+v", fig)
	}
}

func TestExecuteCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Execute(ctx, Request{Trials: 4, Exchange: &ExchangeOptions{Dim: 4, Seed: 1}}); err == nil {
		t.Fatal("cancelled execute returned a result")
	}
}

func TestExecuteCustomSoC(t *testing.T) {
	req := Request{CustomSoC: &CustomSoCOptions{
		W: 2, H: 2,
		Tiles:    []TileSpec{{Kind: "cpu"}, {Kind: "accel", Accel: "FFT"}, {Kind: "accel", Accel: "FFT"}, {Kind: "mem"}},
		BudgetMW: 60,
		Tasks:    []TaskSpec{{Accel: "FFT", WorkCycles: 2e4}},
		Seed:     1,
	}}
	res, err := Execute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindCustomSoC || res.SoC == nil || !res.SoC.Completed {
		t.Fatalf("custom result: %+v", res)
	}
}

func TestFigureRegistryValidation(t *testing.T) {
	if len(FigureNames()) < 15 {
		t.Fatalf("registry too small: %v", FigureNames())
	}
	if title, ok := FigureTitle("7"); !ok || title == "" {
		t.Fatal("figure 7 missing")
	}
	if err := (FigureOptions{Name: "nope"}).Validate(); err == nil {
		t.Fatal("unknown figure validated")
	}
	if err := (FigureOptions{Name: "3", Dims: []int{1}}).Validate(); err == nil {
		t.Fatal("tiny dim validated")
	}
	if err := (FigureOptions{Name: "faults", DropRates: []float64{2}}).Validate(); err == nil {
		t.Fatal("drop rate 2 validated")
	}
}

func TestRunFigureMatchesExperimentRows(t *testing.T) {
	fig, err := RunFigure(context.Background(), FigureOptions{Name: "3", Dims: []int{4}, Trials: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Lines) != 2 { // 1-way and 4-way rows for the single dim
		t.Fatalf("lines: %q", fig.Lines)
	}
	again, err := RunFigure(context.Background(), FigureOptions{Name: "3", Dims: []int{4}, Trials: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig.Lines, again.Lines) {
		t.Fatal("figure lines not deterministic")
	}
}

func TestDeprecatedFaultAliases(t *testing.T) {
	// The alias types are interchangeable with the canonical ones.
	var tf TileFault = TileFaultAt{Tile: 1, AtCycle: 10}
	var lf LinkFault = LinkFaultAt{A: 0, B: 1, AtCycle: 10}
	var sf SlowFault = SlowFaultAt{Tile: 2, AtCycle: 10, Factor: 2}
	if tf.Tile != 1 || lf.B != 1 || sf.Factor != 2 {
		t.Fatal("alias field mapping broken")
	}
}
