package blitzcoin

import "testing"

func TestThermalCapThroughPublicAPI(t *testing.T) {
	capped := SimulateExchange(ExchangeOptions{
		Dim: 8, Torus: true, RandomPairing: true, Init: InitHotspot,
		TargetPerTile: 16, CoinsPerTile: 8, ThermalCap: 50, Seed: 3,
	})
	if !capped.CoinsConserved {
		t.Fatal("thermal cap broke conservation")
	}
	if capped.ThermalRejects == 0 {
		t.Fatal("tight cap on a hotspot recorded no clamps")
	}
	free := SimulateExchange(ExchangeOptions{
		Dim: 8, Torus: true, RandomPairing: true, Init: InitHotspot,
		TargetPerTile: 16, CoinsPerTile: 8, Seed: 3,
	})
	if free.ThermalRejects != 0 {
		t.Fatal("uncapped run recorded clamps")
	}
}

func TestCPUPowerProxyTracksActivity(t *testing.T) {
	var targets []int64
	p := NewCPUPowerProxy(1.5, func(c int64) { targets = append(targets, c) })
	busy := CPUActivityWindow{Cycles: 100000, Instr: 200000, MemOps: 25000, FPOps: 25000}
	idle := CPUActivityWindow{Cycles: 100000, Instr: 2000}
	var busyTarget, idleTarget int64
	for i := 0; i < 10; i++ {
		busyTarget = p.Sample(busy, 800)
	}
	for i := 0; i < 10; i++ {
		idleTarget = p.Sample(idle, 800)
	}
	if idleTarget >= busyTarget {
		t.Fatalf("idle target %d not below busy %d", idleTarget, busyTarget)
	}
	if len(targets) == 0 {
		t.Fatal("no targets pushed")
	}
	if p.EstimateMW() <= 0 {
		t.Fatal("no power estimate")
	}
}

func TestCompareDroopContrast(t *testing.T) {
	// Small droop: both survive, UVFR clock stretches.
	small := CompareDroop(700, 0.03)
	if small.UVFRFreqDuringMHz >= small.UVFRFreqBeforeMHz {
		t.Fatal("UVFR clock did not stretch")
	}
	if small.ConventionalViolated {
		t.Fatal("30mV droop should sit inside the 50mV guardband")
	}
	// Large droop: conventional breaks, UVFR still just slows.
	large := CompareDroop(700, 0.08)
	if !large.ConventionalViolated {
		t.Fatal("80mV droop should breach the guardband")
	}
	if large.GuardbandPowerPenaltyPct <= 0 {
		t.Fatal("guardband penalty missing")
	}
}

func TestCompareDroopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad target did not panic")
		}
	}()
	CompareDroop(0, 0.05)
}
