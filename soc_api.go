package blitzcoin

import (
	"fmt"
	"io"

	"blitzcoin/internal/power"
	"blitzcoin/internal/soc"
	"blitzcoin/internal/workload"
)

// Scheme names a power-management scheme for SoC simulations.
type Scheme string

// The implemented schemes.
const (
	BC     Scheme = "BC"     // BlitzCoin: fully decentralized coin exchange
	BCC    Scheme = "BC-C"   // BlitzCoin allocation, centralized controller
	CRR    Scheme = "C-RR"   // centralized round-robin greedy baseline [42]
	TS     Scheme = "TS"     // ring-based TokenSmart [43]
	PT     Scheme = "PT"     // hierarchical price theory [81]
	Static Scheme = "Static" // one-time proportional split, no reallocation
)

// Workload names a built-in workload DAG.
type Workload string

// The built-in workloads of the evaluated SoCs (Sec. V-B, Fig. 14).
const (
	// AVParallel: the autonomous-vehicle application with all 3x3-SoC
	// accelerators concurrent (WL-Par).
	AVParallel Workload = "av-parallel"
	// AVDependent: the same application as a dependency DAG (WL-Dep).
	AVDependent Workload = "av-dependent"
	// CVParallel / CVDependent: the 4x4 computer-vision application.
	CVParallel  Workload = "cv-parallel"
	CVDependent Workload = "cv-dependent"
	// Silicon7 / Silicon7Par: the 7-accelerator workload measured on the
	// fabricated 6x6 prototype, dependent and concurrent variants.
	Silicon7    Workload = "silicon-7acc"
	Silicon7Par Workload = "silicon-7acc-par"
)

// SoCOptions configures RunSoC.
type SoCOptions struct {
	// SoC selects the platform: "3x3" (autonomous vehicle), "4x4"
	// (computer vision), or "6x6" (the fabricated prototype with its
	// 10-tile PM cluster). Default "3x3".
	SoC string
	// Scheme selects the PM scheme. Default BC.
	Scheme Scheme
	// BudgetMW is the accelerator power budget. Default: the paper's high
	// budget for the platform (120, 450, or 200 mW).
	BudgetMW float64
	// Workload selects the task DAG. Default: the platform's parallel
	// workload.
	Workload Workload
	// Repeat chains that many frames of the workload back-to-back.
	// Default 3.
	Repeat int
	// RelativeProportional selects the RP allocation strategy (default
	// true, the paper's choice); false selects AP.
	AbsoluteProportional bool
	// Faults, when non-nil and non-empty, injects the given fault model
	// into the SoC: NoC packet faults plus tile kills that fail-stop both
	// a tile's PM datapath and its running task (the task is re-queued on
	// a surviving tile of the same accelerator type). Under the BC scheme
	// the coin-exchange fabric is hardened against the model as well.
	Faults *FaultOptions
	// Seed drives all randomness.
	Seed uint64
}

// SoCResult reports one full-system run.
type SoCResult struct {
	SoC, Scheme, Strategy, Workload string

	Completed bool
	// ExecMicros is the workload makespan.
	ExecMicros float64
	// Response-time statistics over all completed reallocations.
	MeanResponseMicros   float64
	MedianResponseMicros float64
	MaxResponseMicros    float64
	ResponsesRecorded    int
	// Power statistics.
	AvgPowerMW, PeakPowerMW, BudgetMW float64
	UtilizationPct                    float64
	ActivityChanges                   int

	// Fault-injection outcome (zero on a healthy run).
	TilesKilled   int
	TasksRequeued int

	res soc.Result
}

// LongestCapExcursionCycles returns the longest contiguous span, in NoC
// cycles, during which total power exceeded the budget by more than tolFrac
// (e.g. 0.20 for 20%) — the degraded-mode recovery-bound metric.
func (r SoCResult) LongestCapExcursionCycles(tolFrac float64) uint64 {
	return r.res.LongestCapExcursion(tolFrac)
}

// String renders a one-line summary.
func (r SoCResult) String() string {
	return fmt.Sprintf("%s %s %s %s: exec=%.1fus resp(med)=%.2fus util=%.1f%%",
		r.SoC, r.Scheme, r.Strategy, r.Workload, r.ExecMicros,
		r.MedianResponseMicros, r.UtilizationPct)
}

// WritePowerTraceCSV writes the per-tile power traces of the run
// ("cycle,t00-FFT,..." rows at every change point) to w.
func (r SoCResult) WritePowerTraceCSV(w io.Writer) error {
	return r.res.Recorder.WriteCSV(w)
}

// lookupWorkload resolves a workload name.
func lookupWorkload(name Workload) *workload.Graph {
	switch name {
	case AVParallel:
		return workload.AutonomousVehicleParallel()
	case AVDependent:
		return workload.AutonomousVehicleDependent()
	case CVParallel:
		return workload.ComputerVisionParallel()
	case CVDependent:
		return workload.ComputerVisionDependent()
	case Silicon7:
		return workload.SevenAcceleratorSilicon()
	case Silicon7Par:
		return workload.SevenAcceleratorParallel()
	}
	panic(fmt.Sprintf("blitzcoin: unknown workload %q", name))
}

// lookupScheme resolves a scheme name.
func lookupScheme(s Scheme) soc.Scheme {
	switch s {
	case BC:
		return soc.SchemeBC
	case BCC:
		return soc.SchemeBCC
	case CRR:
		return soc.SchemeCRR
	case TS:
		return soc.SchemeTS
	case PT:
		return soc.SchemePT
	case Static:
		return soc.SchemeStatic
	}
	panic(fmt.Sprintf("blitzcoin: unknown scheme %q", s))
}

// RunSoC executes a workload on a BlitzCoin-enabled SoC simulation and
// reports execution time, PM response times, and power statistics. It
// panics on unknown platform, scheme, or workload names, and on workloads
// that need accelerators the platform lacks.
func RunSoC(o SoCOptions) SoCResult {
	if o.SoC == "" {
		o.SoC = "3x3"
	}
	if o.Scheme == "" {
		o.Scheme = BC
	}
	if o.Repeat == 0 {
		o.Repeat = 3
	}
	scheme := lookupScheme(o.Scheme)

	var cfg soc.Config
	switch o.SoC {
	case "3x3":
		if o.BudgetMW == 0 {
			o.BudgetMW = 120
		}
		if o.Workload == "" {
			o.Workload = AVParallel
		}
		cfg = soc.SoC3x3(o.BudgetMW, scheme, o.Seed)
	case "4x4":
		if o.BudgetMW == 0 {
			o.BudgetMW = 450
		}
		if o.Workload == "" {
			o.Workload = CVParallel
		}
		cfg = soc.SoC4x4(o.BudgetMW, scheme, o.Seed)
	case "6x6":
		if o.BudgetMW == 0 {
			o.BudgetMW = 200
		}
		if o.Workload == "" {
			o.Workload = Silicon7Par
		}
		cfg = soc.SoC6x6(o.BudgetMW, scheme, o.Seed)
	default:
		panic(fmt.Sprintf("blitzcoin: unknown SoC %q", o.SoC))
	}
	if o.AbsoluteProportional {
		cfg.Strategy = soc.AbsoluteProportional
	}
	cfg.Faults = o.Faults.toInternal()

	g := lookupWorkload(o.Workload)
	if o.Repeat > 1 {
		g = workload.Repeat(g, o.Repeat)
	}
	res := soc.New(cfg).Run(g)
	return SoCResult{
		SoC:                  res.SoC,
		Scheme:               res.Scheme,
		Strategy:             res.Strategy,
		Workload:             res.Workload,
		Completed:            res.Completed,
		ExecMicros:           res.ExecMicros(),
		MeanResponseMicros:   res.MeanResponseMicros(),
		MedianResponseMicros: res.MedianResponseMicros(),
		MaxResponseMicros:    res.MaxResponseMicros(),
		ResponsesRecorded:    len(res.Responses),
		AvgPowerMW:           res.AvgPowerMW,
		PeakPowerMW:          res.PeakPowerMW,
		BudgetMW:             res.BudgetMW,
		UtilizationPct:       res.UtilizationPct(),
		ActivityChanges:      res.ActivityChanges,
		TilesKilled:          res.TilesKilled,
		TasksRequeued:        res.TasksRequeued,
		res:                  res,
	}
}

// AcceleratorPoint is one DVFS operating point of an accelerator's
// characterization (Fig. 13).
type AcceleratorPoint struct {
	V    float64 // supply voltage (V)
	FMHz float64 // maximum frequency at V
	PmW  float64 // power at that point
}

// AcceleratorCurve returns the power/frequency characterization of one of
// the six modeled accelerators: FFT, Viterbi, NVDLA, GEMM, Conv2D, Vision.
func AcceleratorCurve(name string) ([]AcceleratorPoint, error) {
	c, ok := powerCatalog()[name]
	if !ok {
		return nil, fmt.Errorf("blitzcoin: unknown accelerator %q", name)
	}
	out := make([]AcceleratorPoint, len(c.Points))
	for i, p := range c.Points {
		out[i] = AcceleratorPoint{V: p.V, FMHz: p.FMHz, PmW: p.PmW}
	}
	return out, nil
}

// powerCatalog defers the internal import binding.
func powerCatalog() map[string]*power.Curve { return power.Catalog() }
