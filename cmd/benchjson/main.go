// Command benchjson turns `go test -bench` output into a committed JSON
// snapshot, and gates regressions against a previous snapshot.
//
// Snapshot mode reads benchmark output on stdin and writes one JSON document
// holding every benchmark's ns/op, B/op, allocs/op, and custom metrics, one
// sample per -count repetition:
//
//	go test -bench=. -benchmem -count=3 . | benchjson -sha abc1234 -out BENCH_abc1234.json
//
// Check mode reads fresh benchmark output on stdin and compares one
// benchmark's best ns/op and allocs/op against the committed baseline,
// failing (exit 1) on a regression beyond -max-regress:
//
//	go test -bench=BenchmarkExchangeThroughput -benchmem . | \
//	    benchjson -baseline BENCH_abc1234.json -bench BenchmarkExchangeThroughput -max-regress 0.20
//
// The perf trajectory of the repository is the sequence of committed
// BENCH_<sha>.json files; `make bench` and `make benchcheck` drive the two
// modes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's samples across -count repetitions.
type Benchmark struct {
	Name        string               `json:"name"`
	Iterations  []int64              `json:"iterations"`
	NsPerOp     []float64            `json:"ns_per_op"`
	BytesPerOp  []float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp []float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string][]float64 `json:"metrics,omitempty"`
}

// Snapshot is the committed JSON document.
type Snapshot struct {
	SHA        string       `json:"sha,omitempty"`
	Go         string       `json:"go,omitempty"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

func (s *Snapshot) find(name string) *Benchmark {
	for _, b := range s.Benchmarks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// parse consumes `go test -bench` output. Benchmark lines look like:
//
//	BenchmarkName-8  	 12	 97273245 ns/op	 916.4 custom-metric	 30659648 B/op	 943511 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs. Non-benchmark lines
// (goos/goarch/pkg/PASS/ok) are skipped.
func parse(lines []string) *Snapshot {
	snap := &Snapshot{}
	byName := map[string]*Benchmark{}
	for _, line := range lines {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		// Strip the -GOMAXPROCS suffix so snapshots from different machines
		// key identically.
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := byName[name]
		if b == nil {
			b = &Benchmark{Name: name}
			byName[name] = b
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
		b.Iterations = append(b.Iterations, iters)
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				b.NsPerOp = append(b.NsPerOp, v)
			case "B/op":
				b.BytesPerOp = append(b.BytesPerOp, v)
			case "allocs/op":
				b.AllocsPerOp = append(b.AllocsPerOp, v)
			default:
				if b.Metrics == nil {
					b.Metrics = map[string][]float64{}
				}
				b.Metrics[unit] = append(b.Metrics[unit], v)
			}
		}
	}
	return snap
}

// best returns the minimum sample: the least-noisy stand-in for the true
// cost, following benchstat's use of order statistics over means.
func best(xs []float64) (float64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, true
}

func readStdin() []string {
	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines
}

func check(baselinePath, bench string, maxRegress float64, cur *Snapshot) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	bb, cb := base.find(bench), cur.find(bench)
	if bb == nil {
		return fmt.Errorf("baseline %s has no %s", baselinePath, bench)
	}
	if cb == nil {
		return fmt.Errorf("stdin output has no %s", bench)
	}
	fail := false
	gate := func(metric string, baseVals, curVals []float64) {
		b, okB := best(baseVals)
		c, okC := best(curVals)
		if !okB || !okC || b == 0 {
			return
		}
		ratio := c / b
		status := "ok"
		if ratio > 1+maxRegress {
			status = "REGRESSION"
			fail = true
		}
		fmt.Printf("benchcheck %s %s: baseline=%.0f current=%.0f (%+.1f%%) %s\n",
			bench, metric, b, c, 100*(ratio-1), status)
	}
	gate("ns/op", bb.NsPerOp, cb.NsPerOp)
	gate("allocs/op", bb.AllocsPerOp, cb.AllocsPerOp)
	if fail {
		return fmt.Errorf("%s regressed more than %.0f%% vs %s", bench, 100*maxRegress, baselinePath)
	}
	return nil
}

func main() {
	out := flag.String("out", "", "write parsed snapshot JSON to this file")
	sha := flag.String("sha", "", "git short SHA to record in the snapshot")
	goVersion := flag.String("goversion", "", "go version to record in the snapshot")
	baseline := flag.String("baseline", "", "check mode: committed snapshot to compare against")
	bench := flag.String("bench", "BenchmarkExchangeThroughput", "check mode: benchmark to gate on")
	maxRegress := flag.Float64("max-regress", 0.20, "check mode: allowed fractional regression")
	flag.Parse()

	snap := parse(readStdin())
	snap.SHA = *sha
	snap.Go = *goVersion
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *baseline != "" {
		if err := check(*baseline, *bench, *maxRegress, snap); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}
