// Command benchjson turns `go test -bench` output into a committed JSON
// snapshot, and gates regressions against a previous snapshot.
//
// Snapshot mode reads benchmark output on stdin and writes one JSON document
// holding every benchmark's ns/op, B/op, allocs/op, and custom metrics, one
// sample per -count repetition:
//
//	go test -bench=. -benchmem -count=3 . | benchjson -sha abc1234 -out BENCH_abc1234.json
//
// Check mode reads fresh benchmark output on stdin and compares each gated
// benchmark's best ns/op and allocs/op against the committed baseline,
// failing (exit 1) with the offending benchmark and metric named when any
// regresses beyond -max-regress. -bench takes a comma-separated list:
//
//	go test -bench='^(BenchmarkExchangeThroughput|BenchmarkSoCRunThroughput)$' -benchmem . | \
//	    benchjson -baseline BENCH_abc1234.json \
//	    -bench BenchmarkExchangeThroughput,BenchmarkSoCRunThroughput -max-regress 0.20
//
// Report mode renders the committed snapshot sequence as a markdown
// trajectory table (one row per benchmark, one column per snapshot SHA, with
// the percentage delta of best ns/op against the previous snapshot):
//
//	benchjson -report BENCH_abc1234.json BENCH_def5678.json > BENCHMARKS.md
//
// The perf trajectory of the repository is the sequence of committed
// BENCH_<sha>.json files; `make bench`, `make benchcheck`, and
// `make bench-report` drive the three modes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's samples across -count repetitions.
type Benchmark struct {
	Name        string               `json:"name"`
	Iterations  []int64              `json:"iterations"`
	NsPerOp     []float64            `json:"ns_per_op"`
	BytesPerOp  []float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp []float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string][]float64 `json:"metrics,omitempty"`
}

// Snapshot is the committed JSON document.
type Snapshot struct {
	SHA        string       `json:"sha,omitempty"`
	Go         string       `json:"go,omitempty"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

func (s *Snapshot) find(name string) *Benchmark {
	for _, b := range s.Benchmarks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// parse consumes `go test -bench` output. Benchmark lines look like:
//
//	BenchmarkName-8  	 12	 97273245 ns/op	 916.4 custom-metric	 30659648 B/op	 943511 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs. Non-benchmark lines
// (goos/goarch/pkg/PASS/ok) are skipped.
func parse(lines []string) *Snapshot {
	snap := &Snapshot{}
	byName := map[string]*Benchmark{}
	for _, line := range lines {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		// Strip the -GOMAXPROCS suffix so snapshots from different machines
		// key identically.
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := byName[name]
		if b == nil {
			b = &Benchmark{Name: name}
			byName[name] = b
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
		b.Iterations = append(b.Iterations, iters)
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				b.NsPerOp = append(b.NsPerOp, v)
			case "B/op":
				b.BytesPerOp = append(b.BytesPerOp, v)
			case "allocs/op":
				b.AllocsPerOp = append(b.AllocsPerOp, v)
			default:
				if b.Metrics == nil {
					b.Metrics = map[string][]float64{}
				}
				b.Metrics[unit] = append(b.Metrics[unit], v)
			}
		}
	}
	return snap
}

// best returns the minimum sample: the least-noisy stand-in for the true
// cost, following benchstat's use of order statistics over means.
func best(xs []float64) (float64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, true
}

func readStdin() []string {
	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines
}

func check(baselinePath, benches string, maxRegress float64, cur *Snapshot) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	var offending []string
	for _, bench := range strings.Split(benches, ",") {
		bench = strings.TrimSpace(bench)
		bb, cb := base.find(bench), cur.find(bench)
		if bb == nil {
			return fmt.Errorf("baseline %s has no %s", baselinePath, bench)
		}
		if cb == nil {
			return fmt.Errorf("stdin output has no %s", bench)
		}
		gate := func(metric string, baseVals, curVals []float64) {
			b, okB := best(baseVals)
			c, okC := best(curVals)
			if !okB || !okC || b == 0 {
				return
			}
			ratio := c / b
			status := "ok"
			if ratio > 1+maxRegress {
				status = "REGRESSION"
				offending = append(offending, bench+" "+metric)
			}
			fmt.Printf("benchcheck %s %s: baseline=%.0f current=%.0f (%+.1f%%) %s\n",
				bench, metric, b, c, 100*(ratio-1), status)
		}
		gate("ns/op", bb.NsPerOp, cb.NsPerOp)
		gate("allocs/op", bb.AllocsPerOp, cb.AllocsPerOp)
	}
	if len(offending) > 0 {
		return fmt.Errorf("regressed more than %.0f%% vs %s: %s",
			100*maxRegress, baselinePath, strings.Join(offending, ", "))
	}
	return nil
}

// report renders the snapshot files (in trajectory order) as a markdown
// table: one row per benchmark, one column per snapshot, each cell the best
// ns/op with its delta against the previous snapshot that has the benchmark.
// Unreadable paths are skipped with a warning so a pruned snapshot does not
// break the trajectory.
func report(paths []string) error {
	var snaps []*Snapshot
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: skipping %s: %v\n", path, err)
			continue
		}
		s := &Snapshot{}
		if err := json.Unmarshal(raw, s); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		if s.SHA == "" {
			s.SHA = strings.TrimSuffix(strings.TrimPrefix(path, "BENCH_"), ".json")
		}
		snaps = append(snaps, s)
	}
	if len(snaps) == 0 {
		return fmt.Errorf("no readable snapshots")
	}

	// Row order: first appearance across the trajectory.
	var names []string
	seen := map[string]bool{}
	for _, s := range snaps {
		for _, b := range s.Benchmarks {
			if !seen[b.Name] {
				seen[b.Name] = true
				names = append(names, b.Name)
			}
		}
	}

	fmt.Println("# Benchmark trajectory")
	fmt.Println()
	fmt.Println("Best-of-N ns/op per committed `BENCH_<sha>.json` snapshot; the")
	fmt.Println("percentage is the delta against the previous snapshot that ran the")
	fmt.Println("benchmark. Regenerate with `make bench-report` after `make bench`.")
	fmt.Println("See BENCHMARKING.md for the run-validity policy.")
	fmt.Println()
	head, rule := "| benchmark |", "|---|"
	for _, s := range snaps {
		head += " " + s.SHA + " |"
		rule += "---:|"
	}
	fmt.Println(head)
	fmt.Println(rule)
	for _, name := range names {
		row := "| " + strings.TrimPrefix(name, "Benchmark") + " |"
		prev, havePrev := 0.0, false
		for _, s := range snaps {
			b := s.find(name)
			if b == nil {
				row += " — |"
				continue
			}
			v, ok := best(b.NsPerOp)
			if !ok {
				row += " — |"
				continue
			}
			cell := fmt.Sprintf("%.0f", v)
			if havePrev && prev > 0 {
				cell += fmt.Sprintf(" (%+.1f%%)", 100*(v/prev-1))
			}
			prev, havePrev = v, true
			row += " " + cell + " |"
		}
		fmt.Println(row)
	}
	return nil
}

func main() {
	out := flag.String("out", "", "write parsed snapshot JSON to this file")
	sha := flag.String("sha", "", "git short SHA to record in the snapshot")
	goVersion := flag.String("goversion", "", "go version to record in the snapshot")
	baseline := flag.String("baseline", "", "check mode: committed snapshot to compare against")
	bench := flag.String("bench", "BenchmarkExchangeThroughput", "check mode: comma-separated benchmarks to gate on")
	maxRegress := flag.Float64("max-regress", 0.20, "check mode: allowed fractional regression")
	doReport := flag.Bool("report", false, "report mode: render the snapshot files given as args into a markdown trajectory table")
	flag.Parse()

	if *doReport {
		if err := report(flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	snap := parse(readStdin())
	snap.SHA = *sha
	snap.Go = *goVersion
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *baseline != "" {
		if err := check(*baseline, *bench, *maxRegress, snap); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}
