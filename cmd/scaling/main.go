// Command scaling runs the analytical extension to larger SoCs: the
// motivation trends of Fig. 1, the Nmax and PM-overhead projections of
// Fig. 21 (with scaling constants fitted from this repository's own
// measured SoC responses, as the paper fits its constants from its SoCs),
// and the cross-design comparison of Table I.
//
// Usage:
//
//	scaling -fig 1
//	scaling -fig 21 [-paper]   # -paper uses the paper's tau constants
//	scaling -table 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"blitzcoin/internal/experiments"
	"blitzcoin/internal/scaling"
)

func main() {
	fig := flag.String("fig", "", "figure: 1 or 21")
	table := flag.String("table", "", "table: 1")
	usePaper := flag.Bool("paper", false, "use the paper's fitted tau constants instead of refitting")
	seed := flag.Uint64("seed", 1, "random seed for the fitting runs")
	flag.Parse()

	ctx := context.Background()

	switch {
	case *fig == "1":
		fmt.Println("# Fig. 1 — response time vs activity-change interval Tw/N")
		fmt.Println("scheme   N     T(N) us    Tw(ms)  Tw/N us  supported")
		for _, r := range experiments.Fig01(
			[]float64{5, 10, 20, 50, 100, 200, 500, 1000},
			[]float64{1, 5, 20}) {
			fmt.Printf("%-6s %5.0f %9.2f %8.0f %9.2f  %v\n",
				r.Scheme, r.N, r.ResponseUs, r.TwMs, r.IntervalUs, r.Supported)
		}
	case *fig == "21":
		var models map[string]scaling.Model
		if *usePaper {
			models = scaling.PaperModels()
			fmt.Println("# Fig. 21 — using the paper's tau constants")
		} else {
			fmt.Println("# Fig. 21 — fitting tau from this repo's measured SoC responses...")
			models = experiments.FitScalingModels(ctx, *seed)
		}
		names := make([]string, 0, len(models))
		for n := range models {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("fitted models:")
		for _, n := range names {
			m := models[n]
			fmt.Printf("  %-5s %-11s tau=%.3f us\n", m.Name, m.Law, m.Tau)
		}
		fmt.Println("\nNmax by workload phase duration (left panel):")
		fmt.Println("scheme  Tw=0.2ms  Tw=1ms  Tw=7ms  Tw=10ms")
		for _, n := range []string{"BC", "BC-C", "C-RR", "TS", "PT"} {
			m, ok := models[n]
			if !ok {
				continue
			}
			fmt.Printf("%-6s %9.0f %7.0f %7.0f %8.0f\n", n,
				m.NMax(200), m.NMax(1000), m.NMax(7000), m.NMax(10000))
		}
		fmt.Println("\nPM-time fraction at Tw=10ms (right panel):")
		fmt.Println("scheme   N=10   N=100   N=400  N=1000")
		for _, n := range []string{"BC", "BC-C", "C-RR", "TS", "PT"} {
			m, ok := models[n]
			if !ok {
				continue
			}
			f := func(x float64) float64 { return 100 * m.OverheadFraction(x, 10000) }
			fmt.Printf("%-6s %5.1f%% %6.1f%% %6.1f%% %6.1f%%\n", n, f(10), f(100), f(400), f(1000))
		}
	case *table == "1":
		fmt.Println("# Table I — implemented state-of-the-art designs (response measured at N=13)")
		for _, r := range experiments.Table1(ctx, *seed) {
			fmt.Println(r)
		}
	default:
		fmt.Fprintln(os.Stderr, "scaling: pass -fig 1, -fig 21, or -table 1")
		os.Exit(2)
	}
}
