// Command blitzd is the batched, cached sweep-serving daemon: it accepts
// blitzcoin.Request JSON over HTTP, schedules the computations on a
// bounded worker pool, coalesces identical in-flight requests into one
// computation, and serves repeats byte-identically from a content-
// addressed result cache keyed on the canonical request hash and engine
// version.
//
// Usage:
//
//	blitzd [-addr :8425] [-workers 2] [-parallel 0]
//	       [-cache-entries 256] [-cache-mb 64]
//	       [-addrfile path] [-drain-timeout 30s]
//
// Endpoints: POST /v1/sweep, GET /v1/figures, GET /healthz, GET /metrics,
// and /debug/pprof. SIGINT/SIGTERM drain gracefully: in-flight sweeps
// finish (up to -drain-timeout), new ones are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blitzcoin/internal/server"
	"blitzcoin/internal/sweep"
)

func main() {
	addr := flag.String("addr", ":8425", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 2, "concurrent sweep computations")
	parallel := flag.Int("parallel", 0, "worker goroutines per sweep (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 256, "result-cache entry bound (<0 disables)")
	cacheMB := flag.Int("cache-mb", 64, "result-cache size bound in MiB (<0 disables)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file (for scripts)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight sweeps")
	flag.Parse()
	sweep.SetDefaultParallelism(*parallel)

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := server.New(server.Config{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		CacheBytes:   int64(*cacheMB) << 20,
		Logger:       log,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen", "addr", *addr, "error", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Error("addrfile", "path", *addrFile, "error", err)
			os.Exit(1)
		}
	}
	fmt.Printf("blitzd listening on %s\n", bound)

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		log.Error("serve", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Info("draining", "timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting and let in-flight HTTP exchanges finish, then drain
	// the computation pool (detached leaders may outlive their clients).
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("http shutdown", "error", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Warn("drain incomplete", "error", err)
		os.Exit(1)
	}
	log.Info("bye")
}
