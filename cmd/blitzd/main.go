// Command blitzd is the batched, cached sweep-serving daemon: it accepts
// blitzcoin.Request JSON over HTTP, schedules the computations on a
// bounded worker pool, coalesces identical in-flight requests into one
// computation, and serves repeats byte-identically from a content-
// addressed result cache keyed on the canonical request hash and engine
// version.
//
// Usage:
//
//	blitzd [-addr :8425] [-workers 2] [-parallel 0]
//	       [-cache-entries 256] [-cache-mb 64]
//	       [-keys keys.json] [-queue-depth 64]
//	       [-store dir] [-store-max-mb 256]
//	       [-addrfile path] [-drain-timeout 30s]
//	       [-ledger path.jsonl] [-ledger-batch 8]
//	       [-coordinator] [-cluster-workers url,url,...]
//	       [-steal-unit n] [-no-speculation]
//	       [-join url -advertise url]
//	       [-chaos '{"fail_slow":[...]}' -chaos-tile 2]
//
// Endpoints: POST /v1/sweep, POST /v1/shard, GET /v1/figures, GET
// /v1/stream (follow a sweep's live events over SSE), GET
// /v1/ledger/proof and /v1/ledger/root (result-ledger audits, with
// -ledger), GET /healthz (liveness), GET /readyz (readiness: drain
// state, queue depth, and — on coordinators — live-worker availability),
// GET /metrics, and /debug/pprof; coordinators additionally serve POST
// /v1/cluster/join and GET /v1/cluster/status. SIGINT/SIGTERM drain
// gracefully: in-flight sweeps finish (up to -drain-timeout), open SSE
// streams follow their in-flight sweep to completion, new work is
// refused with 503 + Retry-After.
//
// Multi-tenant mode: `-keys keys.json` loads a tenant key file (names,
// hashed API keys, token-bucket rates, windowed sweep/byte quotas,
// priority classes). Clients authenticate with `Authorization: Bearer
// <key>` (or X-API-Key); keyless requests are served under the file's
// optional "anonymous" tier or rejected with 401. Rate- or
// quota-exceeded requests get 429 + Retry-After, and per-class
// admission queues (bounded by -queue-depth) dequeue interactive work
// before batch. Without -keys every request maps to one unlimited
// anonymous tenant — the pre-tenancy behavior.
//
// Persistent store: `-store dir` adds a disk tier beneath the in-memory
// result cache: every computed sweep and shard is persisted
// (content-addressed by request hash + engine version, checksummed,
// written atomically), a memory miss consults disk before computing,
// and a restarted daemon warms its index from the directory in the
// background — so a populated store serves repeat sweeps byte-identically
// across restarts with zero re-execution. -store-max-mb bounds the
// directory; least-recently-used blobs are garbage-collected past it.
//
// Ledger mode: `-ledger path` appends every computed result (options
// hash, engine version, canonical result SHA) to a Merkle-batched
// append-only JSONL file and stamps the ledger sequence + tree head into
// served results; blitzctl -verify audits any served result against
// GET /v1/ledger/proof.
//
// Cluster mode: `-coordinator` makes this daemon split every /v1/sweep
// across its workers as /v1/shard dispatches and merge the rows
// deterministically (byte-identical to single-node execution). Workers
// are listed statically with -cluster-workers and/or self-register by
// running with `-join http://coordinator -advertise http://self`.
// Shards are pulled from a work queue by idle workers (-steal-unit sets
// the grain), and stragglers are speculatively re-executed on a second
// worker (-spec-percentile/-spec-factor/-spec-min-samples tune the
// threshold; -no-speculation turns it off).
//
// Chaos mode: `-chaos` takes blitzcoin fault-options JSON (the same
// shape the sweep API's "faults" field takes) and injects those faults
// into this daemon's HTTP surface — fail-slow stretch, fail-stop
// connection kills, coordinator-link partitions, and packet drop/dup/
// delay — with the daemon playing tile -chaos-tile against the
// coordinator's tile 0. Observability endpoints stay fault-free.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"blitzcoin"
	"blitzcoin/internal/cluster"
	"blitzcoin/internal/ledger"
	"blitzcoin/internal/server"
	"blitzcoin/internal/store"
	"blitzcoin/internal/sweep"
	"blitzcoin/internal/tenant"
)

func main() {
	addr := flag.String("addr", ":8425", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 2, "concurrent sweep computations")
	parallel := flag.Int("parallel", 0, "worker goroutines per sweep (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 256, "result-cache entry bound (<0 disables)")
	cacheMB := flag.Int("cache-mb", 64, "result-cache size bound in MiB (<0 disables)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file (for scripts)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight sweeps")
	ledgerPath := flag.String("ledger", "", "append-only results-ledger file (empty disables the ledger)")
	ledgerBatch := flag.Int("ledger-batch", 0, "appends per Merkle seal (0 = default 8)")
	keysPath := flag.String("keys", "", "tenant key file (empty = open access, one unlimited anonymous tenant)")
	queueDepth := flag.Int("queue-depth", 64, "admission-queue bound per priority class")
	storeDir := flag.String("store", "", "disk-backed result-store directory (empty disables the disk tier)")
	storeMaxMB := flag.Int("store-max-mb", 256, "result-store size bound in MiB (<=0 disables the bound)")

	coordinator := flag.Bool("coordinator", false, "serve sweeps by sharding them across cluster workers")
	clusterWorkers := flag.String("cluster-workers", "", "comma-separated static worker base URLs (coordinator mode)")
	shards := flag.Int("shards", 0, "fixed shard count per sweep (0 = shards-per-worker x live workers)")
	shardsPerWorker := flag.Int("shards-per-worker", 0, "auto-planning shards per live worker (0 = default 2)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent shards per worker (0 = default 2)")
	maxAttempts := flag.Int("max-attempts", 0, "dispatch attempts per shard before the sweep fails (0 = default 4)")
	heartbeat := flag.Duration("heartbeat", 0, "worker liveness-probe cadence (0 = default 1s)")
	evictAfter := flag.Duration("evict-after", 0, "unreachable window before a worker is evicted (0 = default 5x heartbeat)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-shard dispatch timeout (0 = default 10m)")
	stealUnit := flag.Int("steal-unit", 0, "max sweep units per shard for work-stealing (0 = use -shards/-shards-per-worker)")
	noSpeculation := flag.Bool("no-speculation", false, "disable speculative straggler re-execution")
	specPercentile := flag.Float64("spec-percentile", 0, "completed-shard latency percentile anchoring the straggler threshold (0 = default 0.95)")
	specFactor := flag.Float64("spec-factor", 0, "straggler threshold multiplier over the percentile latency (0 = default 1.5)")
	specMinSamples := flag.Int("spec-min-samples", 0, "completed shards required before speculation arms (0 = default 3)")

	joinURL := flag.String("join", "", "coordinator base URL to register this worker with")
	advertise := flag.String("advertise", "", "base URL this worker is reachable at (required with -join)")

	chaosJSON := flag.String("chaos", "", "fault-options JSON injected into this daemon's HTTP surface (chaos testing)")
	chaosTile := flag.Int("chaos-tile", 1, "tile index this daemon plays in the -chaos fault plan (coordinator is 0)")
	flag.Parse()
	sweep.SetDefaultParallelism(*parallel)

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))

	cfg := server.Config{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		CacheBytes:   int64(*cacheMB) << 20,
		Logger:       log,
		QueueDepth:   *queueDepth,
	}
	if *keysPath != "" {
		reg, err := tenant.Load(*keysPath)
		if err != nil {
			log.Error("keys", "path", *keysPath, "error", err)
			os.Exit(1)
		}
		cfg.Tenants = reg
		log.Info("tenants loaded", "path", *keysPath, "tenants", len(reg.Tenants()))
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, blitzcoin.EngineVersion, int64(*storeMaxMB)<<20, log)
		if err != nil {
			log.Error("store", "dir", *storeDir, "error", err)
			os.Exit(1)
		}
		defer st.Close()
		cfg.Store = st
		log.Info("store open", "dir", *storeDir, "max_mb", *storeMaxMB)
	}
	if *ledgerPath != "" {
		led, err := ledger.Open(*ledgerPath, *ledgerBatch)
		if err != nil {
			log.Error("ledger", "path", *ledgerPath, "error", err)
			os.Exit(1)
		}
		defer func() {
			if err := led.Close(); err != nil {
				log.Warn("ledger close", "error", err)
			}
		}()
		cfg.Ledger = led
		size, root := led.Root()
		log.Info("ledger open", "path", *ledgerPath, "entries", size, "root", root)
	}
	var coord *cluster.Coordinator
	if *coordinator {
		var staticWorkers []string
		for _, w := range strings.Split(*clusterWorkers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				staticWorkers = append(staticWorkers, w)
			}
		}
		var err error
		coord, err = cluster.New(cluster.Config{
			Options: blitzcoin.ClusterOptions{
				Workers:               staticWorkers,
				Shards:                *shards,
				ShardsPerWorker:       *shardsPerWorker,
				MaxInflight:           *maxInflight,
				MaxAttempts:           *maxAttempts,
				HeartbeatMillis:       int(heartbeat.Milliseconds()),
				EvictAfterMillis:      int(evictAfter.Milliseconds()),
				ShardTimeoutMillis:    int(shardTimeout.Milliseconds()),
				StealUnit:             *stealUnit,
				NoSpeculation:         *noSpeculation,
				SpeculationPercentile: *specPercentile,
				SpeculationFactor:     *specFactor,
				SpeculationMinSamples: *specMinSamples,
			},
			Logger: log,
		})
		if err != nil {
			log.Error("cluster", "error", err)
			os.Exit(1)
		}
		defer coord.Close()
		cfg.Run = coord.Run
		cfg.Cluster = coord
	}
	srv := server.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen", "addr", *addr, "error", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Error("addrfile", "path", *addrFile, "error", err)
			os.Exit(1)
		}
	}
	fmt.Printf("blitzd listening on %s\n", bound)

	handler := srv.Handler()
	if *chaosJSON != "" {
		var faults blitzcoin.FaultOptions
		if err := json.Unmarshal([]byte(*chaosJSON), &faults); err != nil {
			log.Error("chaos", "error", err)
			os.Exit(1)
		}
		if *chaosTile == 0 {
			log.Error("chaos", "error", "-chaos-tile 0 is the coordinator's tile; pick another")
			os.Exit(1)
		}
		handler = cluster.NewChaos(faults, *chaosTile, log).Wrap(handler)
		log.Info("chaos armed", "tile", *chaosTile)
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *joinURL != "" {
		self := *advertise
		if self == "" {
			log.Error("-join requires -advertise (the URL this worker is reachable at)")
			os.Exit(1)
		}
		interval := *heartbeat
		if interval <= 0 {
			interval = time.Second
		}
		go cluster.JoinLoop(ctx, nil, *joinURL, self, interval, log)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		log.Error("serve", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Info("draining", "timeout", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Flip the drain flag before http.Server.Shutdown: Shutdown blocks on
	// open connections, and SSE streams only end once they observe the
	// drain (they follow any still-in-flight sweep to completion first).
	srv.BeginDrain()
	// Stop accepting and let in-flight HTTP exchanges finish, then drain
	// the computation pool (detached leaders may outlive their clients).
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("http shutdown", "error", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Warn("drain incomplete", "error", err)
		os.Exit(1)
	}
	log.Info("bye")
}
