// Command silicon runs the silicon-prototype proxy experiments of
// Sec. VI-C on the simulated 6x6 SoC with its 10-tile PM cluster: budget
// utilization and throughput versus static allocation for the 7/5/4/3-
// accelerator workloads (Fig. 19), and the coin-exchange response to the
// end-of-NVDLA activity transition (Fig. 20).
//
// Usage:
//
//	silicon -fig 19 [-budget 200] [-seed 1]
//	silicon -fig 20
//	silicon -fig all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"blitzcoin/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "experiment: 19, 20, nopm, or all")
	budget := flag.Float64("budget", 200, "PM-cluster power budget in mW")
	seed := flag.Uint64("seed", 1, "random seed")
	trace := flag.String("trace", "", "CSV path for the Fig. 20 coin-count trace (optional)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	run := map[string]func(){
		"19": func() {
			fmt.Println("# Fig. 19 — silicon proxy: utilization and throughput vs static allocation")
			for _, r := range experiments.Fig19(ctx, *budget, *seed) {
				fmt.Println(r)
			}
			fmt.Println("\n# Fig. 19 (bottom left) — coin allocation before/after convergence")
			for _, r := range experiments.Fig19Coins(*budget, *seed) {
				fmt.Println(r)
			}
		},
		"20": func() {
			fmt.Println("# Fig. 20 — response to activity transitions, 7-accelerator workload")
			for _, r := range experiments.Fig20(ctx, *budget, *seed) {
				fmt.Println(r)
			}
			rec, resp := experiments.Fig20Trace(*budget, *seed)
			fmt.Printf("\n# Fig. 20 — coin counts across the end-of-NVDLA transition (response %.2f us)\n",
				float64(resp)/800)
			if *trace != "" {
				f, err := os.Create(*trace)
				if err != nil {
					fmt.Fprintf(os.Stderr, "silicon: %v\n", err)
					os.Exit(1)
				}
				defer f.Close()
				if err := rec.WriteCSV(f); err != nil {
					fmt.Fprintf(os.Stderr, "silicon: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("(coin trace written to %s)\n", *trace)
			} else {
				for _, name := range rec.Names() {
					fmt.Printf("  %-14s final=%2.0f coins\n", name, rec.Series(name).Last())
				}
			}
		},
		"nopm": func() {
			fmt.Println("# Sec. VI-C — PM overhead: BlitzCoin vs the No-PM baseline tile")
			fmt.Println(experiments.NoPMOverhead(*seed))
		},
	}

	if *fig == "all" {
		for _, k := range []string{"19", "20", "nopm"} {
			run[k]()
			fmt.Println()
		}
		return
	}
	f, ok := run[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "silicon: unknown experiment %q (want 19, 20, nopm, all)\n", *fig)
		os.Exit(2)
	}
	f()
}
