// Command export regenerates every experiment and writes its data as CSV
// files into one directory, mirroring the artifact's "CSV data with
// post-processing scripts for figure generation" workflow. Plot with the
// tool of your choice.
//
// Usage:
//
//	export -outdir data/ [-seed 1] [-trials 50]
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"blitzcoin/internal/experiments"
)

func main() {
	outdir := flag.String("outdir", "data", "output directory")
	seed := flag.Uint64("seed", 1, "random seed")
	trials := flag.Int("trials", 50, "Monte Carlo trials for the emulator sweeps")
	flag.Parse()

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fatal(err)
	}

	ctx := context.Background()

	dims := []int{4, 8, 12, 16, 20}

	writeCSV(*outdir, "fig03_exchange_modes.csv",
		[]string{"mode", "d", "N", "cycles_mean", "cycles_p95", "packets_mean"},
		func(emit func(...string)) {
			for _, r := range experiments.Fig03(ctx, dims, *trials, *seed) {
				emit(r.Label, itoa(r.D), itoa(r.N),
					ftoa(r.MeanCycles), ftoa(r.P95Cycles), ftoa(r.MeanPackets))
			}
		})

	writeCSV(*outdir, "fig04_bc_vs_tokensmart.csv",
		[]string{"scheme", "d", "N", "cycles_mean", "cycles_p95", "cycles_max"},
		func(emit func(...string)) {
			for _, r := range experiments.Fig04(ctx, dims, *trials, *seed) {
				emit(r.Label, itoa(r.D), itoa(r.N),
					ftoa(r.MeanCycles), ftoa(r.P95Cycles), ftoa(r.MaxCycles))
			}
		})

	writeCSV(*outdir, "fig06_dynamic_timing.csv",
		[]string{"variant", "d", "N", "cycles_mean", "packets_mean"},
		func(emit func(...string)) {
			for _, r := range experiments.Fig06(ctx, dims, *trials, *seed) {
				emit(r.Label, itoa(r.D), itoa(r.N), ftoa(r.MeanCycles), ftoa(r.MeanPackets))
			}
		})

	writeCSV(*outdir, "fig07_residual_error.csv",
		[]string{"N", "random_pairing", "bucket_center", "count"},
		func(emit func(...string)) {
			for _, r := range experiments.Fig07(ctx, []int{100, 400}, *trials, *seed) {
				for i, c := range r.Hist.Counts {
					if c == 0 {
						continue
					}
					emit(itoa(r.N), fmt.Sprint(r.RandomPairing),
						ftoa(r.Hist.BucketCenter(i)), itoa(c))
				}
			}
		})

	writeCSV(*outdir, "fig08_heterogeneity.csv",
		[]string{"acc_types", "d", "N", "cycles_mean", "start_error"},
		func(emit func(...string)) {
			for _, r := range experiments.Fig08(ctx, dims, []int{1, 2, 4, 8}, *trials, *seed) {
				emit(r.Label, itoa(r.D), itoa(r.N), ftoa(r.MeanCycles), ftoa(r.MeanStartErr))
			}
		})

	writeCSV(*outdir, "fig13_power_curves.csv",
		[]string{"accel", "V", "F_MHz", "P_mW"},
		func(emit func(...string)) {
			for _, p := range experiments.Fig13() {
				emit(p.Accel, ftoa(p.V), ftoa(p.FMHz), ftoa(p.PmW))
			}
		})

	// Fig. 16 power traces: one file per run.
	experiments.Fig16(ctx, *seed, func(name string) io.Writer {
		f, err := os.Create(filepath.Join(*outdir, name))
		if err != nil {
			fatal(err)
		}
		return f
	})

	writeCSV(*outdir, "fig17_soc3x3.csv", socHeader(), socRows(experiments.Fig17(ctx, *seed)))
	writeCSV(*outdir, "fig18_soc4x4.csv", socHeader(), socRows(experiments.Fig18(ctx, *seed)))

	writeCSV(*outdir, "fig19_silicon.csv",
		[]string{"accelerators", "exec_us", "utilization_pct", "gain_vs_static_pct", "resp_us"},
		func(emit func(...string)) {
			for _, r := range experiments.Fig19(ctx, 200, *seed) {
				emit(itoa(r.Accelerators), ftoa(r.ExecUs), ftoa(r.UtilizationPct),
					ftoa(r.ThroughputGainPct), ftoa(r.MeanResponseUs))
			}
		})

	// Fig. 20: the coin-count trace across the end-of-NVDLA transition.
	rec, resp := experiments.Fig20Trace(200, *seed)
	f, err := os.Create(filepath.Join(*outdir, "fig20_coin_trace.csv"))
	if err != nil {
		fatal(err)
	}
	if err := rec.WriteCSV(f); err != nil {
		fatal(err)
	}
	f.Close()
	fmt.Printf("fig20 transition response: %.2f us\n", float64(resp)/800)

	// Fig. 21: fitted models and projections.
	models := experiments.FitScalingModels(ctx, *seed)
	writeCSV(*outdir, "fig21_scaling.csv",
		[]string{"scheme", "law", "tau_us", "nmax_0p2ms", "nmax_1ms", "nmax_7ms", "nmax_10ms", "overhead_pct_n100_10ms"},
		func(emit func(...string)) {
			for _, name := range []string{"BC", "BC-C", "C-RR", "TS", "PT"} {
				m, ok := models[name]
				if !ok {
					continue
				}
				emit(name, m.Law.String(), ftoa(m.Tau),
					ftoa(m.NMax(200)), ftoa(m.NMax(1000)), ftoa(m.NMax(7000)), ftoa(m.NMax(10000)),
					ftoa(100*m.OverheadFraction(100, 10000)))
			}
		})

	writeCSV(*outdir, "table1_comparison.csv",
		[]string{"strategy", "reference", "control", "allocation", "levels", "resp_us_n13", "scaling"},
		func(emit func(...string)) {
			for _, r := range experiments.Table1(ctx, *seed) {
				emit(r.Strategy, r.Reference, r.Control, r.Allocation,
					itoa(r.Levels), ftoa(r.ResponseUs), r.Scaling)
			}
		})

	writeCSV(*outdir, "ap_vs_rp.csv",
		[]string{"budget_mw", "ap_exec_us", "rp_exec_us", "rp_gain_pct"},
		func(emit func(...string)) {
			for _, r := range experiments.APvsRP(ctx, []float64{60, 80, 100, 120}, *seed) {
				emit(ftoa(r.BudgetMW), ftoa(r.APExecUs), ftoa(r.RPExecUs), ftoa(r.RPImprovementPct))
			}
		})

	fmt.Printf("wrote experiment data to %s\n", *outdir)
}

func socHeader() []string {
	return []string{"soc", "scheme", "budget_mw", "workload", "exec_us", "resp_mean_us", "resp_max_us", "utilization_pct"}
}

func socRows(rows []experiments.SoCRow) func(emit func(...string)) {
	return func(emit func(...string)) {
		for _, r := range rows {
			emit(r.SoC, r.Scheme, ftoa(r.BudgetMW), r.Workload,
				ftoa(r.Res.ExecMicros()), ftoa(r.Res.MeanResponseMicros()),
				ftoa(r.Res.MaxResponseMicros()), ftoa(r.Res.UtilizationPct()))
		}
	}
}

func writeCSV(dir, name string, header []string, fill func(emit func(...string))) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		fatal(err)
	}
	fill(func(fields ...string) {
		if err := w.Write(fields); err != nil {
			fatal(err)
		}
	})
	w.Flush()
	if err := w.Error(); err != nil {
		fatal(err)
	}
	fmt.Printf("  %s\n", name)
}

func itoa(v int) string { return strconv.Itoa(v) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "export: %v\n", err)
	os.Exit(1)
}
