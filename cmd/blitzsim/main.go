// Command blitzsim runs the algorithm-level coin-exchange experiments of
// Sec. III: the 1-way vs 4-way comparison (Fig. 3), the BlitzCoin vs
// TokenSmart comparison (Fig. 4), the dynamic-timing ablation (Fig. 6), the
// random-pairing residual-error histograms (Fig. 7), the heterogeneity
// sweep (Fig. 8), and the robustness extension's drop-rate sweep (-fig
// faults): the hardened exchange under 0-5% PM-plane packet loss.
//
// Usage:
//
//	blitzsim -fig 3 [-trials 100] [-seed 1] [-dmax 20]
//	blitzsim -fig 7 [-trials 1000]
//	blitzsim -fig all [-parallel 8]
//	blitzsim -fig 3 -cpuprofile cpu.out -memprofile mem.out
//
// Trials fan out across -parallel worker goroutines (0 = GOMAXPROCS);
// every parallelism level prints byte-identical rows. SIGINT cancels the
// sweep in flight: already-finished trials are folded into the rows, which
// print with a partial-results warning.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"blitzcoin/internal/experiments"
	"blitzcoin/internal/sweep"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3, 4, 6, 7, 8, contention, faults, or all")
	trials := flag.Int("trials", 0, "Monte Carlo trials per point (default: figure-specific)")
	seed := flag.Uint64("seed", 1, "base random seed")
	dmax := flag.Int("dmax", 20, "largest mesh dimension d (N = d*d)")
	parallel := flag.Int("parallel", 0, "worker goroutines per sweep (0 = GOMAXPROCS); any value yields identical output")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	sweep.SetDefaultParallelism(*parallel)

	// SIGINT/SIGTERM cancel the sweeps: no new trials are dispatched, the
	// trials already running finish, and the partially filled rows print
	// with a warning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blitzsim: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "blitzsim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "blitzsim: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // profile retained allocations, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "blitzsim: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	dims := []int{}
	for d := 4; d <= *dmax; d += 4 {
		dims = append(dims, d)
	}
	pick := func(def int) int {
		if *trials > 0 {
			return *trials
		}
		return def
	}

	run := map[string]func(){
		"3": func() {
			fmt.Println("# Fig. 3 — 1-way vs 4-way: packets and cycles to convergence (Err < 1.5)")
			for _, r := range experiments.Fig03(ctx, dims, pick(100), *seed) {
				fmt.Println(r)
			}
		},
		"4": func() {
			fmt.Println("# Fig. 4 — BlitzCoin vs TokenSmart convergence time")
			for _, r := range experiments.Fig04(ctx, dims, pick(100), *seed) {
				fmt.Println(r)
			}
		},
		"6": func() {
			fmt.Println("# Fig. 6 — conventional vs dynamic-timing 1-way exchange (Err < 1.0)")
			for _, r := range experiments.Fig06(ctx, dims, pick(100), *seed) {
				fmt.Println(r)
			}
		},
		"7": func() {
			fmt.Println("# Fig. 7 — worst-case residual error with/without random pairing")
			for _, r := range experiments.Fig07(ctx, []int{100, 400}, pick(1000), *seed) {
				fmt.Println(r)
				fmt.Print(r.Hist)
			}
		},
		"8": func() {
			fmt.Println("# Fig. 8 — convergence time vs heterogeneity (accType) and size")
			for _, r := range experiments.Fig08(ctx, dims, []int{1, 2, 4, 8}, pick(50), *seed) {
				fmt.Println(r)
			}
		},
		"contention": func() {
			fmt.Println("# Extension — convergence under background plane-5 traffic")
			for _, r := range experiments.ContentionStudy(ctx, 12, []int{0, 20, 50, 100, 200}, pick(10), *seed) {
				fmt.Println(r)
			}
		},
		"faults": func() {
			fmt.Println("# Extension — hardened exchange under PM-plane packet loss")
			for _, r := range experiments.FaultStudy(ctx, []int{6, 10, 14},
				[]float64{0, 0.005, 0.01, 0.02, 0.05}, pick(10), *seed) {
				fmt.Println(r)
			}
		},
	}

	// interrupted reports (and announces) a cancelled sweep: the rows
	// printed so far fold only the trials that finished before SIGINT.
	interrupted := func() bool {
		if ctx.Err() == nil {
			return false
		}
		fmt.Println("\nblitzsim: interrupted — partial results above (undispatched trials omitted)")
		return true
	}

	if *fig == "all" {
		for _, k := range []string{"3", "4", "6", "7", "8", "contention", "faults"} {
			run[k]()
			fmt.Println()
			if interrupted() {
				os.Exit(130)
			}
		}
		return
	}
	f, ok := run[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "blitzsim: unknown figure %q (want 3, 4, 6, 7, 8, contention, faults, all)\n", *fig)
		os.Exit(2)
	}
	f()
	if interrupted() {
		os.Exit(130)
	}
}
