// Command blitzlint runs the BlitzCoin domain analyzers over the module:
// determinism (D001-D003), seedflow (S001-S002), hotpathalloc (H001-H002),
// encapsulation (E001), and apilock (A001-A002), plus directive hygiene
// (X001-X002). See DESIGN.md "Static analysis & invariants" for the catalog.
//
// Usage:
//
//	blitzlint [-update] [-root dir] [packages...]
//
// With no packages, ./... is linted. -update regenerates the two goldens
// (lint/api_v1.txt, lint/escape_allow.txt) instead of checking them. Exit
// status: 0 clean, 1 diagnostics reported, 2 operational failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"blitzcoin/internal/lint"
)

func main() {
	update := flag.Bool("update", false, "regenerate lint/api_v1.txt and lint/escape_allow.txt, then exit")
	root := flag.String("root", "", "module root directory (default: walk up from cwd to go.mod)")
	flag.Parse()

	moduleDir, err := moduleRoot(*root)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(moduleDir, patterns...)
	if err != nil {
		fatal(err)
	}
	goldenDir := filepath.Join(moduleDir, "lint")
	analyzers := lint.DefaultAnalyzers(moduleDir, goldenDir)

	if *update {
		for _, a := range analyzers {
			switch a := a.(type) {
			case *lint.APILock:
				err = a.WriteGolden(pkgs)
			case *lint.HotPathAlloc:
				err = a.WriteGolden()
			default:
				continue
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("blitzlint: regenerated %s golden\n", a.Name())
		}
		return
	}

	res, err := lint.Run(analyzers, pkgs)
	if err != nil {
		fatal(err)
	}
	for _, d := range res.Active {
		fmt.Println(relativize(moduleDir, d))
	}
	fmt.Println(summaryLine(moduleDir, res))
	if res.Failed() {
		os.Exit(1)
	}
}

// summaryLine renders the run summary plus one line per suppressed
// diagnostic, so silenced findings stay visible in every lint run.
func summaryLine(moduleDir string, res *lint.Result) string {
	var b strings.Builder
	b.WriteString(res.Summary())
	for _, d := range res.Suppressed {
		b.WriteString("\n  suppressed: " + relativize(moduleDir, d))
	}
	return b.String()
}

// relativize prints the diagnostic with a moduleDir-relative path.
func relativize(moduleDir string, d lint.Diagnostic) string {
	if rel, err := filepath.Rel(moduleDir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

// moduleRoot returns dir if given, else walks up from cwd to the directory
// holding go.mod.
func moduleRoot(dir string) (string, error) {
	if dir != "" {
		return filepath.Abs(dir)
	}
	cur, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(cur, "go.mod")); err == nil {
			return cur, nil
		}
		parent := filepath.Dir(cur)
		if parent == cur {
			return "", fmt.Errorf("blitzlint: no go.mod above %s", cur)
		}
		cur = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blitzlint:", err)
	os.Exit(2)
}
