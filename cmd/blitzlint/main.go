// Command blitzlint runs the BlitzCoin domain analyzers over the module:
// determinism (D001-D003), seedflow (S001-S002), hotpathalloc (H001-H002),
// encapsulation (E001), apilock (A001-A002), goroleak (G001-G002), ctxflow
// (C001-C002), lockorder (L001-L003), and errdrop (R001), plus directive
// hygiene (X001-X002). See DESIGN.md "Static analysis & invariants" for the
// catalog.
//
// Usage:
//
//	blitzlint [-update] [-root dir] [-analyzers a,b] [-sarif file] [packages...]
//
// With no packages, ./... is linted. -update regenerates the goldens
// (lint/api_v1.txt, lint/escape_allow.txt, lint/lockorder.txt) instead of
// checking them. -analyzers restricts the run to a comma-separated subset.
// -sarif additionally writes the findings as a SARIF 2.1.0 log ("-" for
// stdout) for CI code scanning. Exit status: 0 clean, 1 diagnostics
// reported, 2 operational failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"blitzcoin/internal/lint"
)

func main() {
	update := flag.Bool("update", false, "regenerate the committed goldens (api_v1, escape_allow, lockorder), then exit")
	root := flag.String("root", "", "module root directory (default: walk up from cwd to go.mod)")
	names := flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	sarifOut := flag.String("sarif", "", `write findings as SARIF 2.1.0 to this file ("-" for stdout)`)
	flag.Parse()

	moduleDir, err := moduleRoot(*root)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(moduleDir, patterns...)
	if err != nil {
		fatal(err)
	}
	goldenDir := filepath.Join(moduleDir, "lint")
	analyzers := lint.DefaultAnalyzers(moduleDir, goldenDir)

	if *update {
		for _, a := range analyzers {
			switch a := a.(type) {
			case *lint.APILock:
				err = a.WriteGolden(pkgs)
			case *lint.HotPathAlloc:
				err = a.WriteGolden()
			case *lint.LockOrder:
				err = a.WriteGolden(pkgs)
			default:
				continue
			}
			if err != nil {
				fatal(err)
			}
			fmt.Printf("blitzlint: regenerated %s golden\n", a.Name())
		}
		return
	}

	if *names != "" {
		if analyzers, err = filterAnalyzers(analyzers, *names); err != nil {
			fatal(err)
		}
	}

	res, err := lint.Run(analyzers, pkgs)
	if err != nil {
		fatal(err)
	}
	// With -sarif - the JSON log owns stdout; the human-readable report
	// moves to stderr so consumers get a parseable stream.
	report := os.Stdout
	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, moduleDir, res); err != nil {
			fatal(err)
		}
		if *sarifOut == "-" {
			report = os.Stderr
		}
	}
	for _, d := range res.Active {
		fmt.Fprintln(report, relativize(moduleDir, d))
	}
	fmt.Fprintln(report, summaryLine(moduleDir, res))
	if res.Failed() {
		os.Exit(1)
	}
}

// filterAnalyzers keeps only the named analyzers, failing on unknown names
// so a typo cannot silently lint nothing.
func filterAnalyzers(all []lint.Analyzer, names string) ([]lint.Analyzer, error) {
	byName := map[string]lint.Analyzer{}
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []lint.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			known := make([]string, 0, len(byName))
			for k := range byName {
				known = append(known, k)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// writeSARIF writes the SARIF log to path ("-" for stdout).
func writeSARIF(path, moduleDir string, res *lint.Result) error {
	if path == "-" {
		return lint.WriteSARIF(os.Stdout, moduleDir, res)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := lint.WriteSARIF(f, moduleDir, res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// summaryLine renders the run summary plus one line per suppressed
// diagnostic, so silenced findings stay visible in every lint run.
func summaryLine(moduleDir string, res *lint.Result) string {
	var b strings.Builder
	b.WriteString(res.Summary())
	for _, d := range res.Suppressed {
		b.WriteString("\n  suppressed: " + relativize(moduleDir, d))
	}
	return b.String()
}

// relativize prints the diagnostic with a moduleDir-relative path.
func relativize(moduleDir string, d lint.Diagnostic) string {
	if rel, err := filepath.Rel(moduleDir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}

// moduleRoot returns dir if given, else walks up from cwd to the directory
// holding go.mod.
func moduleRoot(dir string) (string, error) {
	if dir != "" {
		return filepath.Abs(dir)
	}
	cur, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(cur, "go.mod")); err == nil {
			return cur, nil
		}
		parent := filepath.Dir(cur)
		if parent == cur {
			return "", fmt.Errorf("blitzlint: no go.mod above %s", cur)
		}
		cur = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blitzlint:", err)
	os.Exit(2)
}
