// Command socsim runs the full-SoC evaluation of Secs. V-VI: accelerator
// power/frequency characterization (Fig. 13), power traces (Fig. 16),
// execution and response times on the 3x3 and 4x4 SoCs (Figs. 17-18), the
// AP-vs-RP allocation-strategy comparison (Sec. VI-A), and the robustness
// extension's degraded-mode study (-fig degraded): tiles killed mid-workload.
//
// Usage:
//
//	socsim -fig 17 [-seed 1]
//	socsim -fig 16 -outdir traces/    # writes per-run CSV power traces
//	socsim -fig all [-parallel 8]
//	socsim -fig 17 -cpuprofile cpu.out -memprofile mem.out
//
// Independent SoC runs within an experiment fan out across -parallel
// worker goroutines (0 = GOMAXPROCS); every parallelism level prints
// byte-identical rows. SIGINT cancels the runs in flight and prints a
// partial-results warning.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"

	"blitzcoin/internal/experiments"
	"blitzcoin/internal/sweep"
)

func main() {
	fig := flag.String("fig", "all", "experiment: 13, 16, 17, 18, ap-rp, degraded, or all")
	seed := flag.Uint64("seed", 1, "random seed")
	outdir := flag.String("outdir", "", "directory for Fig. 16 CSV power traces (optional)")
	parallel := flag.Int("parallel", 0, "worker goroutines per sweep (0 = GOMAXPROCS); any value yields identical output")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	sweep.SetDefaultParallelism(*parallel)

	// SIGINT/SIGTERM cancel the experiment sweeps: runs already started
	// finish, undispatched ones are skipped, and the output is flagged.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "socsim: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "socsim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "socsim: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // profile retained allocations, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "socsim: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	csvSink := func(name string) io.Writer {
		if *outdir == "" {
			return nil
		}
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "socsim: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*outdir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "socsim: %v\n", err)
			os.Exit(1)
		}
		// The process exit flushes; runs are short-lived.
		return f
	}

	run := map[string]func(){
		"13": func() {
			fmt.Println("# Fig. 13 — accelerator power/frequency characterization")
			fmt.Println("accel   V      F(MHz)   P(mW)")
			for _, p := range experiments.Fig13() {
				fmt.Printf("%-7s %.2f %8.1f %8.2f\n", p.Accel, p.V, p.FMHz, p.PmW)
			}
		},
		"16": func() {
			fmt.Println("# Fig. 16 — 3x3 power traces (WL-Par @120mW, WL-Dep @60mW)")
			for _, r := range experiments.Fig16(ctx, *seed, csvSink) {
				fmt.Println(r)
			}
			if *outdir != "" {
				fmt.Printf("(CSV traces written to %s)\n", *outdir)
			}
		},
		"17": func() {
			fmt.Println("# Fig. 17 — 3x3 SoC: execution and response time, BC vs BC-C vs C-RR")
			for _, r := range experiments.Fig17(ctx, *seed) {
				fmt.Println(r)
			}
		},
		"18": func() {
			fmt.Println("# Fig. 18 — 4x4 SoC: execution and response time, BC vs BC-C vs C-RR")
			for _, r := range experiments.Fig18(ctx, *seed) {
				fmt.Println(r)
			}
		},
		"ap-rp": func() {
			fmt.Println("# Sec. VI-A — Absolute vs Relative Proportional allocation (3x3, BC)")
			for _, r := range experiments.APvsRP(ctx, []float64{60, 80, 100, 120}, *seed) {
				fmt.Println(r)
			}
		},
		"degraded": func() {
			fmt.Println("# Extension — degraded mode: 3x3 BC with 0..3 tiles killed mid-workload")
			for _, r := range experiments.DegradedSoC(ctx, *seed) {
				fmt.Println(r)
			}
		},
	}

	interrupted := func() bool {
		if ctx.Err() == nil {
			return false
		}
		fmt.Println("\nsocsim: interrupted — partial results above (undispatched runs omitted)")
		return true
	}

	if *fig == "all" {
		for _, k := range []string{"13", "16", "17", "18", "ap-rp", "degraded"} {
			run[k]()
			fmt.Println()
			if interrupted() {
				os.Exit(130)
			}
		}
		return
	}
	f, ok := run[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "socsim: unknown experiment %q (want 13, 16, 17, 18, ap-rp, degraded, all)\n", *fig)
		os.Exit(2)
	}
	f()
	if interrupted() {
		os.Exit(130)
	}
}
