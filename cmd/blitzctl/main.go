// Command blitzctl is the blitzd client: it builds or forwards a
// blitzcoin.Request, POSTs it to the daemon, and prints the response
// envelope JSON (which embeds the result and the cached/coalesced serving
// annotations).
//
// Usage:
//
//	blitzctl -addr 127.0.0.1:8425 -figure 7 [-trials 50] [-seed 1]
//	blitzctl -exchange [-dim 8] [-trials 10] [-seed 1]
//	blitzctl -soc 3x3 [-scheme BC] [-seed 1]
//	blitzctl -req request.json      # or -req - for stdin
//	blitzctl -figures               # list the figure registry
//	blitzctl -metrics               # scrape /metrics
//
// Exit status is 0 on HTTP 200, 1 otherwise.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"blitzcoin"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8425", "blitzd address (host:port)")
	reqFile := flag.String("req", "", "POST a request from this JSON file (- for stdin)")
	figure := flag.String("figure", "", "reproduce a figure by registry name")
	exchange := flag.Bool("exchange", false, "run an exchange sweep")
	socName := flag.String("soc", "", "run a SoC simulation on this platform (3x3, 4x4, 6x6)")
	scheme := flag.String("scheme", "", "PM scheme for -soc")
	dim := flag.Int("dim", 0, "mesh dimension for -exchange")
	trials := flag.Int("trials", 0, "trial count for -exchange / -figure")
	seed := flag.Uint64("seed", 0, "base random seed")
	metrics := flag.Bool("metrics", false, "scrape and print /metrics")
	figures := flag.Bool("figures", false, "list the figure registry")
	timeout := flag.Duration("timeout", 10*time.Minute, "request timeout")
	flag.Parse()

	base := "http://" + strings.TrimPrefix(*addr, "http://")
	client := &http.Client{Timeout: *timeout}

	switch {
	case *metrics:
		get(client, base+"/metrics")
	case *figures:
		get(client, base+"/v1/figures")
	default:
		body, err := buildRequest(*reqFile, *figure, *exchange, *socName, *scheme, *dim, *trials, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blitzctl: %v\n", err)
			os.Exit(1)
		}
		post(client, base+"/v1/sweep", body)
	}
}

// buildRequest assembles the POST body from the selected mode.
func buildRequest(reqFile, figure string, exchange bool, socName, scheme string, dim, trials int, seed uint64) ([]byte, error) {
	modes := 0
	for _, on := range []bool{reqFile != "", figure != "", exchange, socName != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return nil, fmt.Errorf("pick exactly one of -req, -figure, -exchange, -soc (have %d)", modes)
	}
	switch {
	case reqFile == "-":
		return io.ReadAll(os.Stdin)
	case reqFile != "":
		return os.ReadFile(reqFile)
	case figure != "":
		return json.Marshal(blitzcoin.Request{Figure: &blitzcoin.FigureOptions{
			Name: figure, Trials: trials, Seed: seed,
		}})
	case exchange:
		return json.Marshal(blitzcoin.Request{Trials: trials, Exchange: &blitzcoin.ExchangeOptions{
			Dim: dim, Torus: true, RandomPairing: true, Seed: seed,
		}})
	default:
		return json.Marshal(blitzcoin.Request{SoC: &blitzcoin.SoCOptions{
			SoC: socName, Scheme: blitzcoin.Scheme(scheme), Seed: seed,
		}})
	}
}

func get(client *http.Client, url string) {
	resp, err := client.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blitzctl: %v\n", err)
		os.Exit(1)
	}
	emit(resp)
}

func post(client *http.Client, url string, body []byte) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "blitzctl: %v\n", err)
		os.Exit(1)
	}
	emit(resp)
}

// emit streams the response body to stdout and exits non-zero on non-200.
func emit(resp *http.Response) {
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body) //nolint:errcheck // best effort to a pipe
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "blitzctl: HTTP %s\n", resp.Status)
		os.Exit(1)
	}
}
