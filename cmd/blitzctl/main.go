// Command blitzctl is the blitzd client: it builds or forwards a
// blitzcoin.Request, POSTs it to the daemon, and prints the response
// envelope JSON (which embeds the result and the cached/coalesced serving
// annotations).
//
// Usage:
//
//	blitzctl -addr 127.0.0.1:8425 -figure 7 [-trials 50] [-seed 1]
//	blitzctl -exchange [-dim 8] [-trials 10] [-seed 1]
//	blitzctl -soc 3x3 [-scheme BC] [-seed 1]
//	blitzctl -req request.json      # or -req - for stdin
//	blitzctl -figures               # list the figure registry
//	blitzctl -metrics               # scrape /metrics
//	blitzctl -cluster               # worker table, steal/speculation counters, shard latency
//	blitzctl -ready                 # readiness probe (/readyz; exit 1 when not ready)
//
// Live telemetry and ledger audits:
//
//	blitzctl -figure 7 -stream      # follow the sweep live over SSE while it runs
//	blitzctl -stream -hash <h>      # follow an already-running sweep by hash
//	blitzctl -exchange -verify      # run, then verify the result against the ledger
//
// -stream subscribes to GET /v1/stream before POSTing, prints each event
// to stderr as it arrives (per-trial progress, convergence markers, live
// series points, shard dispatches on a coordinator), and waits for the
// sweep-done event. -verify recomputes the canonical result SHA of the
// served result, fetches GET /v1/ledger/proof, and checks the Merkle
// inclusion proof locally — exit 0 only if the daemon's ledger really
// contains the result that was served.
//
// Multi-tenant daemons: `-api-key <key>` (default: the BLITZ_API_KEY
// environment variable) sends the key as `Authorization: Bearer <key>`
// on every request. A 401 (missing/unknown key) or 429 (rate limit or
// quota, with its Retry-After wait) is reported as a clear one-line
// error instead of a raw response dump.
//
// Every request runs under -timeout and is cancelled cleanly by SIGINT/
// SIGTERM. Exit status is 0 on HTTP 200, 1 otherwise.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"blitzcoin"
	"blitzcoin/internal/ledger"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8425", "blitzd address (host:port)")
	reqFile := flag.String("req", "", "POST a request from this JSON file (- for stdin)")
	figure := flag.String("figure", "", "reproduce a figure by registry name")
	exchange := flag.Bool("exchange", false, "run an exchange sweep")
	socName := flag.String("soc", "", "run a SoC simulation on this platform (3x3, 4x4, 6x6)")
	scheme := flag.String("scheme", "", "PM scheme for -soc")
	dim := flag.Int("dim", 0, "mesh dimension for -exchange")
	trials := flag.Int("trials", 0, "trial count for -exchange / -figure")
	seed := flag.Uint64("seed", 0, "base random seed")
	metrics := flag.Bool("metrics", false, "scrape and print /metrics")
	figures := flag.Bool("figures", false, "list the figure registry")
	clusterStatus := flag.Bool("cluster", false, "print the coordinator's worker table and shard counters")
	ready := flag.Bool("ready", false, "probe /readyz (exit 0 only when the daemon is ready)")
	stream := flag.Bool("stream", false, "follow the sweep's live events over SSE while it runs")
	verify := flag.Bool("verify", false, "verify the served result against the daemon's ledger")
	hashFlag := flag.String("hash", "", "with -stream: follow this request hash instead of POSTing a sweep")
	timeout := flag.Duration("timeout", 10*time.Minute, "request timeout")
	flag.StringVar(&apiKey, "api-key", os.Getenv("BLITZ_API_KEY"), "API key for multi-tenant daemons (default: $BLITZ_API_KEY)")
	flag.Parse()

	base := "http://" + strings.TrimPrefix(*addr, "http://")
	client := &http.Client{}

	// One context bounds the whole request path: the -timeout deadline
	// plus clean cancellation on SIGINT/SIGTERM.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	switch {
	case *metrics:
		get(ctx, client, base+"/metrics")
	case *figures:
		get(ctx, client, base+"/v1/figures")
	case *clusterStatus:
		get(ctx, client, base+"/v1/cluster/status")
	case *ready:
		get(ctx, client, base+"/readyz")
	case *stream && *hashFlag != "":
		// Follow an already-running (or cached) sweep without launching one.
		connected := make(chan struct{})
		followStream(ctx, client, base, *hashFlag, connected)
	default:
		body, err := buildRequest(*reqFile, *figure, *exchange, *socName, *scheme, *dim, *trials, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blitzctl: %v\n", err)
			os.Exit(1)
		}
		runSweep(ctx, client, base, body, *stream, *verify)
	}
}

// runSweep POSTs the request, optionally following its live event stream
// while it runs and verifying the served result against the ledger after.
func runSweep(ctx context.Context, client *http.Client, base string, body []byte, stream, verify bool) {
	hash := ""
	if stream || verify {
		var req blitzcoin.Request
		if err := json.Unmarshal(body, &req); err != nil {
			fail(fmt.Errorf("decoding request for hashing: %w", err))
		}
		norm := req.Normalized()
		h, err := norm.CanonicalHash()
		if err != nil {
			fail(err)
		}
		hash = h
	}

	var streamDone chan struct{}
	if stream {
		// Subscribe before POSTing so no event outruns us; if the sweep is
		// already cached the stream answers with a synthetic sweep-done.
		connected := make(chan struct{})
		streamDone = make(chan struct{})
		go func() {
			defer close(streamDone)
			followStream(ctx, client, base, hash, connected)
		}()
		select {
		case <-connected:
		case <-time.After(5 * time.Second):
		case <-ctx.Done():
		}
	}

	resp, respBody := postCapture(ctx, client, base+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		if msg := explainStatus(resp, respBody); msg != "" {
			fmt.Fprintf(os.Stderr, "blitzctl: %s\n", msg)
		} else {
			os.Stdout.Write(respBody) //nolint:errcheck // best effort to a pipe
			fmt.Fprintf(os.Stderr, "blitzctl: HTTP %s\n", resp.Status)
		}
		os.Exit(1)
	}
	os.Stdout.Write(respBody) //nolint:errcheck // best effort to a pipe

	if streamDone != nil {
		select {
		case <-streamDone:
		case <-time.After(10 * time.Second):
			fmt.Fprintln(os.Stderr, "blitzctl: stream did not complete; continuing")
		case <-ctx.Done():
		}
	}
	if verify {
		verifyAgainstLedger(ctx, client, base, respBody)
	}
}

// followStream prints the SSE events of one sweep hash to stderr until
// the stream reports sweep-done/sweep-failed or ends. connected closes
// once the subscription is established (or has failed).
func followStream(ctx context.Context, client *http.Client, base, hash string, connected chan struct{}) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/stream?hash="+url.QueryEscape(hash), nil)
	if err != nil {
		close(connected)
		fmt.Fprintf(os.Stderr, "blitzctl: stream: %v\n", err)
		return
	}
	authorize(req)
	resp, err := client.Do(req)
	if err != nil {
		close(connected)
		fmt.Fprintf(os.Stderr, "blitzctl: stream: %v\n", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		close(connected)
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if msg := explainStatus(resp, body); msg != "" {
			fmt.Fprintf(os.Stderr, "blitzctl: stream: %s\n", msg)
		} else {
			fmt.Fprintf(os.Stderr, "blitzctl: stream: HTTP %s: %s\n", resp.Status, bytes.TrimSpace(body))
		}
		return
	}
	close(connected)

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			fmt.Fprintf(os.Stderr, "stream %-14s %s\n", event, strings.TrimPrefix(line, "data: "))
			if event == "sweep-done" || event == "sweep-failed" {
				return
			}
		}
	}
}

// sweepEnvelope is the slice of the POST /v1/sweep response that
// verification needs.
type sweepEnvelope struct {
	RequestHash   string          `json:"request_hash"`
	EngineVersion string          `json:"engine_version"`
	Result        json.RawMessage `json:"result"`
}

// verifyAgainstLedger audits a served sweep response: recompute the
// canonical result SHA locally, fetch the daemon's inclusion proof, check
// that the proof binds (hash, engine, SHA), and verify the Merkle path
// locally. Exits 1 on any mismatch.
func verifyAgainstLedger(ctx context.Context, client *http.Client, base string, respBody []byte) {
	var env sweepEnvelope
	if err := json.Unmarshal(respBody, &env); err != nil {
		fail(fmt.Errorf("decoding sweep envelope: %w", err))
	}
	sha, err := blitzcoin.CanonicalResultSHA(env.Result)
	if err != nil {
		fail(err)
	}

	u := base + "/v1/ledger/proof?hash=" + url.QueryEscape(env.RequestHash) +
		"&engine=" + url.QueryEscape(env.EngineVersion)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		fail(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	proofBody, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "blitzctl: verify: HTTP %s: %s\n", resp.Status, bytes.TrimSpace(proofBody))
		os.Exit(1)
	}
	var p ledger.Proof
	if err := json.Unmarshal(proofBody, &p); err != nil {
		fail(fmt.Errorf("decoding ledger proof: %w", err))
	}

	switch {
	case p.Key != env.RequestHash:
		fmt.Fprintf(os.Stderr, "blitzctl: verify FAILED: proof is for options %s, served %s\n", p.Key, env.RequestHash)
		os.Exit(1)
	case p.Engine != env.EngineVersion:
		fmt.Fprintf(os.Stderr, "blitzctl: verify FAILED: proof engine %s, served %s\n", p.Engine, env.EngineVersion)
		os.Exit(1)
	case p.ResultSHA != sha:
		fmt.Fprintf(os.Stderr, "blitzctl: verify FAILED: ledger holds result %s, served result hashes to %s\n", p.ResultSHA, sha)
		os.Exit(1)
	}
	if err := p.Verify(); err != nil {
		fmt.Fprintf(os.Stderr, "blitzctl: verify FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "blitzctl: ledger verification OK (seq=%d tree=%d root=%s)\n", p.Seq, p.TreeSize, p.Root)
}

// buildRequest assembles the POST body from the selected mode.
func buildRequest(reqFile, figure string, exchange bool, socName, scheme string, dim, trials int, seed uint64) ([]byte, error) {
	modes := 0
	for _, on := range []bool{reqFile != "", figure != "", exchange, socName != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return nil, fmt.Errorf("pick exactly one of -req, -figure, -exchange, -soc (have %d)", modes)
	}
	switch {
	case reqFile == "-":
		return io.ReadAll(os.Stdin)
	case reqFile != "":
		return os.ReadFile(reqFile)
	case figure != "":
		return json.Marshal(blitzcoin.Request{Figure: &blitzcoin.FigureOptions{
			Name: figure, Trials: trials, Seed: seed,
		}})
	case exchange:
		return json.Marshal(blitzcoin.Request{Trials: trials, Exchange: &blitzcoin.ExchangeOptions{
			Dim: dim, Torus: true, RandomPairing: true, Seed: seed,
		}})
	default:
		return json.Marshal(blitzcoin.Request{SoC: &blitzcoin.SoCOptions{
			SoC: socName, Scheme: blitzcoin.Scheme(scheme), Seed: seed,
		}})
	}
}

func get(ctx context.Context, client *http.Client, url string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		fail(err)
	}
	authorize(req)
	resp, err := client.Do(req)
	if err != nil {
		fail(err)
	}
	emit(resp)
}

// postCapture POSTs and returns the full response (body read to the end)
// so callers can both print and inspect it.
func postCapture(ctx context.Context, client *http.Client, url string, body []byte) (*http.Response, []byte) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		fail(err)
	}
	req.Header.Set("Content-Type", "application/json")
	authorize(req)
	resp, err := client.Do(req)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	return resp, b
}

// apiKey is the -api-key / BLITZ_API_KEY credential, attached as a
// Bearer token to every request when non-empty.
var apiKey string

// authorize attaches the API key, if one was supplied.
func authorize(req *http.Request) {
	if apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+apiKey)
	}
}

// explainStatus turns a tenancy rejection into a clear one-line error:
// 401 names the credential problem, 429 names the limit and its
// Retry-After wait. Returns "" for statuses that need no translation.
func explainStatus(resp *http.Response, body []byte) string {
	var reason struct {
		Error string `json:"error"`
	}
	json.Unmarshal(body, &reason) //nolint:errcheck // best-effort: fall back to the raw status line
	switch resp.StatusCode {
	case http.StatusUnauthorized:
		if reason.Error == "" {
			reason.Error = "the daemon requires an API key"
		}
		return fmt.Sprintf("unauthorized: %s (set -api-key or BLITZ_API_KEY)", reason.Error)
	case http.StatusTooManyRequests:
		msg := reason.Error
		if msg == "" {
			msg = "rate limit or quota exceeded"
		}
		if retry := resp.Header.Get("Retry-After"); retry != "" {
			return fmt.Sprintf("throttled: %s; retry in %ss", msg, retry)
		}
		return "throttled: " + msg
	}
	return ""
}

// fail reports a transport-level error, naming the timeout when the
// deadline (rather than the server) killed the request.
func fail(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "blitzctl: request timed out (-timeout)")
	} else {
		fmt.Fprintf(os.Stderr, "blitzctl: %v\n", err)
	}
	os.Exit(1)
}

// emit writes the response body to stdout and exits non-zero on non-200;
// recognized tenancy rejections (401, 429) become one-line errors instead
// of a body dump.
func emit(resp *http.Response) {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	if resp.StatusCode != http.StatusOK {
		if msg := explainStatus(resp, body); msg != "" {
			fmt.Fprintf(os.Stderr, "blitzctl: %s\n", msg)
		} else {
			os.Stdout.Write(body) //nolint:errcheck // best effort to a pipe
			fmt.Fprintf(os.Stderr, "blitzctl: HTTP %s\n", resp.Status)
		}
		os.Exit(1)
	}
	os.Stdout.Write(body) //nolint:errcheck // best effort to a pipe
}
