// Command blitzctl is the blitzd client: it builds or forwards a
// blitzcoin.Request, POSTs it to the daemon, and prints the response
// envelope JSON (which embeds the result and the cached/coalesced serving
// annotations).
//
// Usage:
//
//	blitzctl -addr 127.0.0.1:8425 -figure 7 [-trials 50] [-seed 1]
//	blitzctl -exchange [-dim 8] [-trials 10] [-seed 1]
//	blitzctl -soc 3x3 [-scheme BC] [-seed 1]
//	blitzctl -req request.json      # or -req - for stdin
//	blitzctl -figures               # list the figure registry
//	blitzctl -metrics               # scrape /metrics
//	blitzctl -cluster               # worker table, steal/speculation counters, shard latency
//	blitzctl -ready                 # readiness probe (/readyz; exit 1 when not ready)
//
// Every request runs under -timeout and is cancelled cleanly by SIGINT/
// SIGTERM. Exit status is 0 on HTTP 200, 1 otherwise.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"blitzcoin"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8425", "blitzd address (host:port)")
	reqFile := flag.String("req", "", "POST a request from this JSON file (- for stdin)")
	figure := flag.String("figure", "", "reproduce a figure by registry name")
	exchange := flag.Bool("exchange", false, "run an exchange sweep")
	socName := flag.String("soc", "", "run a SoC simulation on this platform (3x3, 4x4, 6x6)")
	scheme := flag.String("scheme", "", "PM scheme for -soc")
	dim := flag.Int("dim", 0, "mesh dimension for -exchange")
	trials := flag.Int("trials", 0, "trial count for -exchange / -figure")
	seed := flag.Uint64("seed", 0, "base random seed")
	metrics := flag.Bool("metrics", false, "scrape and print /metrics")
	figures := flag.Bool("figures", false, "list the figure registry")
	clusterStatus := flag.Bool("cluster", false, "print the coordinator's worker table and shard counters")
	ready := flag.Bool("ready", false, "probe /readyz (exit 0 only when the daemon is ready)")
	timeout := flag.Duration("timeout", 10*time.Minute, "request timeout")
	flag.Parse()

	base := "http://" + strings.TrimPrefix(*addr, "http://")
	client := &http.Client{}

	// One context bounds the whole request path: the -timeout deadline
	// plus clean cancellation on SIGINT/SIGTERM.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	switch {
	case *metrics:
		get(ctx, client, base+"/metrics")
	case *figures:
		get(ctx, client, base+"/v1/figures")
	case *clusterStatus:
		get(ctx, client, base+"/v1/cluster/status")
	case *ready:
		get(ctx, client, base+"/readyz")
	default:
		body, err := buildRequest(*reqFile, *figure, *exchange, *socName, *scheme, *dim, *trials, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blitzctl: %v\n", err)
			os.Exit(1)
		}
		post(ctx, client, base+"/v1/sweep", body)
	}
}

// buildRequest assembles the POST body from the selected mode.
func buildRequest(reqFile, figure string, exchange bool, socName, scheme string, dim, trials int, seed uint64) ([]byte, error) {
	modes := 0
	for _, on := range []bool{reqFile != "", figure != "", exchange, socName != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return nil, fmt.Errorf("pick exactly one of -req, -figure, -exchange, -soc (have %d)", modes)
	}
	switch {
	case reqFile == "-":
		return io.ReadAll(os.Stdin)
	case reqFile != "":
		return os.ReadFile(reqFile)
	case figure != "":
		return json.Marshal(blitzcoin.Request{Figure: &blitzcoin.FigureOptions{
			Name: figure, Trials: trials, Seed: seed,
		}})
	case exchange:
		return json.Marshal(blitzcoin.Request{Trials: trials, Exchange: &blitzcoin.ExchangeOptions{
			Dim: dim, Torus: true, RandomPairing: true, Seed: seed,
		}})
	default:
		return json.Marshal(blitzcoin.Request{SoC: &blitzcoin.SoCOptions{
			SoC: socName, Scheme: blitzcoin.Scheme(scheme), Seed: seed,
		}})
	}
}

func get(ctx context.Context, client *http.Client, url string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		fail(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		fail(err)
	}
	emit(resp)
}

func post(ctx context.Context, client *http.Client, url string, body []byte) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		fail(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		fail(err)
	}
	emit(resp)
}

// fail reports a transport-level error, naming the timeout when the
// deadline (rather than the server) killed the request.
func fail(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "blitzctl: request timed out (-timeout)")
	} else {
		fmt.Fprintf(os.Stderr, "blitzctl: %v\n", err)
	}
	os.Exit(1)
}

// emit streams the response body to stdout and exits non-zero on non-200.
func emit(resp *http.Response) {
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body) //nolint:errcheck // best effort to a pipe
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "blitzctl: HTTP %s\n", resp.Status)
		os.Exit(1)
	}
}
