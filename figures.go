package blitzcoin

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"blitzcoin/internal/experiments"
)

// FigureOptions selects one of the paper's figures or tables by registry
// name and overrides its sweep parameters. Every field except Name is
// optional; zero values take the figure's own defaults (the same defaults
// the CLIs use), so a bare {"name": "7"} reproduces the published plot.
type FigureOptions struct {
	// Name is the registry key: "1", "3", "4", "6", "7", "8", "13", "16",
	// "17", "18", "19", "20", "21", "ap-rp", "contention", "degraded",
	// "faults", "nopm", "table1". FigureNames lists them.
	Name string `json:"name"`
	// Trials overrides the Monte Carlo trials per point where the figure
	// sweeps (default: figure-specific, matching the CLIs).
	Trials int `json:"trials,omitempty"`
	// Seed is the base random seed. Default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Dims overrides the mesh-dimension sweep of the exchange figures.
	Dims []int `json:"dims,omitempty"`
	// Ns overrides the tile counts of Fig. 7 / SoC sizes of Fig. 1.
	Ns []int `json:"ns,omitempty"`
	// AccelTypes overrides the heterogeneity sweep of Fig. 8.
	AccelTypes []int `json:"accel_types,omitempty"`
	// BudgetMW overrides the PM budget of the silicon figures (19, 20).
	BudgetMW float64 `json:"budget_mw,omitempty"`
	// BudgetsMW overrides the budget sweep of the AP-vs-RP study.
	BudgetsMW []float64 `json:"budgets_mw,omitempty"`
	// DropRates overrides the packet-loss sweep of the fault study.
	DropRates []float64 `json:"drop_rates,omitempty"`
	// BgRates overrides the background-traffic sweep of the contention
	// study (packets per 1000 cycles per tile).
	BgRates []int `json:"bg_rates,omitempty"`
	// Dim overrides the mesh dimension of the contention study.
	Dim int `json:"dim,omitempty"`
	// TwsMs overrides the workload phase durations of Figs. 1 and 21.
	TwsMs []float64 `json:"tws_ms,omitempty"`
}

// figureSpec is one registry entry: the heading, the per-figure defaults,
// and the runner that renders the deterministic report lines.
type figureSpec struct {
	title    string
	defaults func(*FigureOptions)
	run      func(ctx context.Context, o FigureOptions) []string
	// shard, when non-nil, decomposes the figure's Monte-Carlo work into
	// independent trial units for distributed execution; figures without it
	// run as one indivisible shard.
	shard *figureShard
}

// figureShard splits a figure along its flattened trial axis (point-major,
// trial order within a point — the same order the local runner reduces in).
// trial computes one global trial unit and encodes its raw value; merge
// decodes the complete unit sequence and renders the report lines. Both
// sides derive per-trial randomness from the unit index alone, so the
// merged lines are byte-identical to run's at any shard count.
type figureShard struct {
	units func(o FigureOptions) int
	trial func(o FigureOptions, g int) json.RawMessage
	merge func(o FigureOptions, trials []json.RawMessage) ([]string, error)
}

// mustJSON marshals a plain trial value; these are floats and flat structs,
// for which encoding cannot fail.
func mustJSON(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("blitzcoin: trial payload encoding failed: %v", err))
	}
	return b
}

// stringRows renders any row slice whose elements implement Stringer.
func stringRows[T fmt.Stringer](rows []T) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

var paperDims = []int{4, 8, 12, 16, 20}

// figureRegistry maps registry names to their specs. Runners mirror the
// CLI output byte for byte, so a served figure equals the printed one.
var figureRegistry = map[string]figureSpec{
	"1": {
		title: "Fig. 1 — response time vs activity-change interval Tw/N",
		defaults: func(o *FigureOptions) {
			if len(o.Ns) == 0 {
				o.Ns = []int{5, 10, 20, 50, 100, 200, 500, 1000}
			}
			if len(o.TwsMs) == 0 {
				o.TwsMs = []float64{1, 5, 20}
			}
		},
		run: func(_ context.Context, o FigureOptions) []string {
			ns := make([]float64, len(o.Ns))
			for i, n := range o.Ns {
				ns[i] = float64(n)
			}
			lines := []string{"scheme   N     T(N) us    Tw(ms)  Tw/N us  supported"}
			for _, r := range experiments.Fig01(ns, o.TwsMs) {
				lines = append(lines, fmt.Sprintf("%-6s %5.0f %9.2f %8.0f %9.2f  %v",
					r.Scheme, r.N, r.ResponseUs, r.TwMs, r.IntervalUs, r.Supported))
			}
			return lines
		},
	},
	"3": {
		title:    "Fig. 3 — 1-way vs 4-way: packets and cycles to convergence (Err < 1.5)",
		defaults: func(o *FigureOptions) { figDimsTrials(o, 100) },
		run: func(ctx context.Context, o FigureOptions) []string {
			return stringRows(experiments.Fig03(ctx, o.Dims, o.Trials, o.Seed))
		},
	},
	"4": {
		title:    "Fig. 4 — BlitzCoin vs TokenSmart convergence time",
		defaults: func(o *FigureOptions) { figDimsTrials(o, 100) },
		run: func(ctx context.Context, o FigureOptions) []string {
			return stringRows(experiments.Fig04(ctx, o.Dims, o.Trials, o.Seed))
		},
	},
	"6": {
		title:    "Fig. 6 — conventional vs dynamic-timing 1-way exchange (Err < 1.0)",
		defaults: func(o *FigureOptions) { figDimsTrials(o, 100) },
		run: func(ctx context.Context, o FigureOptions) []string {
			return stringRows(experiments.Fig06(ctx, o.Dims, o.Trials, o.Seed))
		},
	},
	"7": {
		title: "Fig. 7 — worst-case residual error with/without random pairing",
		defaults: func(o *FigureOptions) {
			if len(o.Ns) == 0 {
				o.Ns = []int{100, 400}
			}
			if o.Trials == 0 {
				o.Trials = 1000
			}
		},
		run: func(ctx context.Context, o FigureOptions) []string {
			return fig07Lines(experiments.Fig07(ctx, o.Ns, o.Trials, o.Seed))
		},
		shard: &figureShard{
			units: func(o FigureOptions) int {
				return len(experiments.Fig07Points(o.Ns)) * o.Trials
			},
			trial: func(o FigureOptions, g int) json.RawMessage {
				p := experiments.Fig07Points(o.Ns)[g/o.Trials]
				return mustJSON(experiments.Fig07Trial(p, g%o.Trials, o.Seed))
			},
			merge: func(o FigureOptions, trials []json.RawMessage) ([]string, error) {
				vals := make([]float64, len(trials))
				for i, b := range trials {
					if err := json.Unmarshal(b, &vals[i]); err != nil {
						return nil, fmt.Errorf("blitzcoin: figure 7 trial %d payload: %w", i, err)
					}
				}
				points := experiments.Fig07Points(o.Ns)
				return fig07Lines(experiments.Fig07Assemble(points, o.Trials, vals)), nil
			},
		},
	},
	"8": {
		title: "Fig. 8 — convergence time vs heterogeneity (accType) and size",
		defaults: func(o *FigureOptions) {
			figDimsTrials(o, 50)
			if len(o.AccelTypes) == 0 {
				o.AccelTypes = []int{1, 2, 4, 8}
			}
		},
		run: func(ctx context.Context, o FigureOptions) []string {
			return stringRows(experiments.Fig08(ctx, o.Dims, o.AccelTypes, o.Trials, o.Seed))
		},
	},
	"13": {
		title:    "Fig. 13 — accelerator power/frequency characterization",
		defaults: func(o *FigureOptions) {},
		run: func(_ context.Context, o FigureOptions) []string {
			lines := []string{"accel   V      F(MHz)   P(mW)"}
			for _, p := range experiments.Fig13() {
				lines = append(lines, fmt.Sprintf("%-7s %.2f %8.1f %8.2f", p.Accel, p.V, p.FMHz, p.PmW))
			}
			return lines
		},
	},
	"16": {
		title:    "Fig. 16 — 3x3 power traces (WL-Par @120mW, WL-Dep @60mW)",
		defaults: func(o *FigureOptions) {},
		run: func(ctx context.Context, o FigureOptions) []string {
			noCSV := func(string) io.Writer { return nil }
			return stringRows(experiments.Fig16(ctx, o.Seed, noCSV))
		},
	},
	"17": {
		title:    "Fig. 17 — 3x3 SoC: execution and response time, BC vs BC-C vs C-RR",
		defaults: func(o *FigureOptions) {},
		run: func(ctx context.Context, o FigureOptions) []string {
			return stringRows(experiments.Fig17(ctx, o.Seed))
		},
	},
	"18": {
		title:    "Fig. 18 — 4x4 SoC: execution and response time, BC vs BC-C vs C-RR",
		defaults: func(o *FigureOptions) {},
		run: func(ctx context.Context, o FigureOptions) []string {
			return stringRows(experiments.Fig18(ctx, o.Seed))
		},
	},
	"19": {
		title:    "Fig. 19 — silicon proxy: utilization and throughput vs static allocation",
		defaults: func(o *FigureOptions) { figBudget(o) },
		run: func(ctx context.Context, o FigureOptions) []string {
			lines := stringRows(experiments.Fig19(ctx, o.BudgetMW, o.Seed))
			lines = append(lines, "# Fig. 19 (bottom left) — coin allocation before/after convergence")
			return append(lines, stringRows(experiments.Fig19Coins(o.BudgetMW, o.Seed))...)
		},
	},
	"20": {
		title:    "Fig. 20 — response to activity transitions, 7-accelerator workload",
		defaults: func(o *FigureOptions) { figBudget(o) },
		run: func(ctx context.Context, o FigureOptions) []string {
			lines := stringRows(experiments.Fig20(ctx, o.BudgetMW, o.Seed))
			rec, resp := experiments.Fig20Trace(o.BudgetMW, o.Seed)
			lines = append(lines, fmt.Sprintf("# coin counts across the end-of-NVDLA transition (response %.2f us)",
				float64(resp)/800))
			for _, name := range rec.Names() {
				lines = append(lines, fmt.Sprintf("  %-14s final=%2.0f coins", name, rec.Series(name).Last()))
			}
			return lines
		},
	},
	"21": {
		title: "Fig. 21 — Nmax and PM-overhead projections from refitted models",
		defaults: func(o *FigureOptions) {
			if len(o.TwsMs) == 0 {
				o.TwsMs = []float64{0.2, 1, 7, 10}
			}
		},
		run: func(ctx context.Context, o FigureOptions) []string {
			models := experiments.FitScalingModels(ctx, o.Seed)
			names := make([]string, 0, len(models))
			for n := range models {
				names = append(names, n)
			}
			sort.Strings(names)
			var lines []string
			for _, n := range names {
				m := models[n]
				lines = append(lines, fmt.Sprintf("%-5s %-11s tau=%.3f us", m.Name, m.Law, m.Tau))
			}
			for _, r := range experiments.Fig21(models, o.TwsMs) {
				lines = append(lines, fmt.Sprintf("%-5s Tw=%5.1fms Nmax=%8.0f overhead@N=100,Tw=10ms=%5.1f%%",
					r.Scheme, r.TwMs, r.NMax, r.OverheadPct))
			}
			return lines
		},
	},
	"ap-rp": {
		title: "Sec. VI-A — Absolute vs Relative Proportional allocation (3x3, BC)",
		defaults: func(o *FigureOptions) {
			if len(o.BudgetsMW) == 0 {
				o.BudgetsMW = []float64{60, 80, 100, 120}
			}
		},
		run: func(ctx context.Context, o FigureOptions) []string {
			return stringRows(experiments.APvsRP(ctx, o.BudgetsMW, o.Seed))
		},
	},
	"contention": {
		title: "Extension — convergence under background plane-5 traffic",
		defaults: func(o *FigureOptions) {
			if o.Dim == 0 {
				o.Dim = 12
			}
			if len(o.BgRates) == 0 {
				o.BgRates = []int{0, 20, 50, 100, 200}
			}
			if o.Trials == 0 {
				o.Trials = 10
			}
		},
		run: func(ctx context.Context, o FigureOptions) []string {
			return stringRows(experiments.ContentionStudy(ctx, o.Dim, o.BgRates, o.Trials, o.Seed))
		},
	},
	"degraded": {
		title:    "Extension — degraded mode: 3x3 BC with 0..3 tiles killed mid-workload",
		defaults: func(o *FigureOptions) {},
		run: func(ctx context.Context, o FigureOptions) []string {
			return stringRows(experiments.DegradedSoC(ctx, o.Seed))
		},
	},
	"faults": {
		title: "Extension — hardened exchange under PM-plane packet loss",
		defaults: func(o *FigureOptions) {
			if len(o.Dims) == 0 {
				o.Dims = []int{6, 10, 14}
			}
			if len(o.DropRates) == 0 {
				o.DropRates = []float64{0, 0.005, 0.01, 0.02, 0.05}
			}
			if o.Trials == 0 {
				o.Trials = 10
			}
		},
		run: func(ctx context.Context, o FigureOptions) []string {
			return stringRows(experiments.FaultStudy(ctx, o.Dims, o.DropRates, o.Trials, o.Seed))
		},
		shard: &figureShard{
			units: func(o FigureOptions) int {
				return len(experiments.FaultPoints(o.Dims, o.DropRates)) * o.Trials
			},
			trial: func(o FigureOptions, g int) json.RawMessage {
				p := experiments.FaultPoints(o.Dims, o.DropRates)[g/o.Trials]
				return mustJSON(experiments.FaultStudyTrial(p, g%o.Trials, o.Seed))
			},
			merge: func(o FigureOptions, trials []json.RawMessage) ([]string, error) {
				vals := make([]experiments.FaultTrial, len(trials))
				for i, b := range trials {
					if err := json.Unmarshal(b, &vals[i]); err != nil {
						return nil, fmt.Errorf("blitzcoin: fault-study trial %d payload: %w", i, err)
					}
				}
				points := experiments.FaultPoints(o.Dims, o.DropRates)
				return stringRows(experiments.FaultAssemble(points, o.Trials, vals)), nil
			},
		},
	},
	"nopm": {
		title:    "Sec. VI-C — PM overhead: BlitzCoin vs the No-PM baseline tile",
		defaults: func(o *FigureOptions) {},
		run: func(_ context.Context, o FigureOptions) []string {
			return []string{experiments.NoPMOverhead(o.Seed).String()}
		},
	},
	"table1": {
		title:    "Table I — implemented state-of-the-art designs (response measured at N=13)",
		defaults: func(o *FigureOptions) {},
		run: func(ctx context.Context, o FigureOptions) []string {
			return stringRows(experiments.Table1(ctx, o.Seed))
		},
	},
}

// fig07Lines renders Fig. 7 rows with their histograms — shared by the
// local runner and the shard merge so both produce identical bytes.
func fig07Lines(rows []experiments.Fig07Row) []string {
	var lines []string
	for _, r := range rows {
		lines = append(lines, r.String())
		lines = append(lines, strings.Split(strings.TrimRight(r.Hist.String(), "\n"), "\n")...)
	}
	return lines
}

// figDimsTrials applies the shared exchange-figure defaults.
func figDimsTrials(o *FigureOptions, trials int) {
	if len(o.Dims) == 0 {
		o.Dims = append([]int(nil), paperDims...)
	}
	if o.Trials == 0 {
		o.Trials = trials
	}
}

// figBudget applies the silicon-figure budget default.
func figBudget(o *FigureOptions) {
	if o.BudgetMW == 0 {
		o.BudgetMW = 200
	}
}

// FigureNames lists the registry, sorted.
func FigureNames() []string {
	names := make([]string, 0, len(figureRegistry))
	for n := range figureRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FigureTitle returns the heading of a registered figure.
func FigureTitle(name string) (string, bool) {
	s, ok := figureRegistry[name]
	if !ok {
		return "", false
	}
	return s.title, true
}

// Normalized returns a copy with the seed and the figure's own sweep
// defaults filled in. Unknown names pass through for Validate to report.
func (o FigureOptions) Normalized() FigureOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if s, ok := figureRegistry[o.Name]; ok {
		o.Dims = append([]int(nil), o.Dims...)
		o.Ns = append([]int(nil), o.Ns...)
		o.AccelTypes = append([]int(nil), o.AccelTypes...)
		o.BudgetsMW = append([]float64(nil), o.BudgetsMW...)
		o.DropRates = append([]float64(nil), o.DropRates...)
		o.BgRates = append([]int(nil), o.BgRates...)
		o.TwsMs = append([]float64(nil), o.TwsMs...)
		s.defaults(&o)
	}
	return o
}

// Validate reports whether the figure request is runnable.
func (o FigureOptions) Validate() error {
	o = o.Normalized()
	if _, ok := figureRegistry[o.Name]; !ok {
		return fmt.Errorf("blitzcoin: unknown figure %q (want one of %s)",
			o.Name, strings.Join(FigureNames(), ", "))
	}
	if o.Trials < 0 {
		return fmt.Errorf("blitzcoin: negative trial count %d", o.Trials)
	}
	for _, d := range append(append([]int(nil), o.Dims...), o.Dim) {
		if d < 0 || (d > 0 && d < 2) {
			return fmt.Errorf("blitzcoin: mesh dimension %d too small", d)
		}
	}
	for _, n := range o.Ns {
		if n < 1 {
			return fmt.Errorf("blitzcoin: tile count %d < 1", n)
		}
	}
	for _, a := range o.AccelTypes {
		if a < 1 {
			return fmt.Errorf("blitzcoin: accelerator type count %d < 1", a)
		}
	}
	for _, r := range o.DropRates {
		if r < 0 || r > 1 {
			return fmt.Errorf("blitzcoin: drop rate %v outside [0,1]", r)
		}
	}
	for _, r := range o.BgRates {
		if r < 0 {
			return fmt.Errorf("blitzcoin: negative background rate %d", r)
		}
	}
	if o.BudgetMW < 0 {
		return fmt.Errorf("blitzcoin: negative budget %v mW", o.BudgetMW)
	}
	for _, b := range o.BudgetsMW {
		if b <= 0 {
			return fmt.Errorf("blitzcoin: non-positive budget %v mW", b)
		}
	}
	return nil
}

// RunFigure reproduces a registered figure and returns its report lines,
// byte-identical to the corresponding CLI output at any parallelism. The
// context cancels the figure's sweeps between runs; RunFigure itself does
// not fail on cancellation — callers that must not serve partial figures
// (Execute, the daemon) check ctx.Err() afterwards.
func RunFigure(ctx context.Context, o FigureOptions) (FigureResult, error) {
	o = o.Normalized()
	if err := o.Validate(); err != nil {
		return FigureResult{}, err
	}
	spec := figureRegistry[o.Name]
	return FigureResult{
		Meta:  newMeta(o.Seed, canonicalHash(string(KindFigure), o)),
		Name:  o.Name,
		Title: spec.title,
		Lines: spec.run(ctx, o),
	}, nil
}
