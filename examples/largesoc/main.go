// Large-SoC scaling: run the coin exchange on meshes from 16 to 400 tiles
// to demonstrate the O(sqrt(N)) convergence scaling, then project how many
// accelerators each power-management scheme can support as workload phases
// shorten (the Fig. 1 / Fig. 21 story).
//
// Run with:
//
//	go run ./examples/largesoc
package main

import (
	"fmt"
	"math"

	"blitzcoin"
)

func main() {
	fmt.Println("== Convergence scaling: coin exchange from a hotspot ==")
	fmt.Printf("%4s %6s %12s %12s %14s\n", "d", "N", "cycles", "us", "cycles/sqrt(N)")

	var ns, times []float64
	for _, d := range []int{4, 8, 12, 16, 20} {
		var cycles float64
		const trials = 10
		for s := uint64(0); s < trials; s++ {
			r := blitzcoin.SimulateExchange(blitzcoin.ExchangeOptions{
				Dim:           d,
				Torus:         true,
				RandomPairing: true,
				Init:          blitzcoin.InitHotspot,
				Seed:          1000*uint64(d) + s,
			})
			if !r.Converged {
				panic("run did not converge")
			}
			cycles += float64(r.ConvergenceCycles)
		}
		cycles /= trials
		n := float64(d * d)
		fmt.Printf("%4d %6.0f %12.0f %12.2f %14.1f\n",
			d, n, cycles, cycles/800, cycles/math.Sqrt(n))
		ns = append(ns, n)
		times = append(times, cycles/800)
	}

	// Fit our own tau_BC from the sweep and project, exactly as Sec. V-E
	// fits its constants from measured SoCs.
	bc := blitzcoin.FitScaling("BC", "O(sqrt(N))", ns, times)
	fmt.Printf("\nfitted tau_BC = %.3f us (paper: 0.20 us)\n", bc.TauMicros)

	fmt.Println("\n== Maximum supported accelerators (Eq. 5.3) ==")
	fmt.Printf("%10s %10s %12s\n", "Tw", "Nmax(BC)", "Nmax(C-RR)")
	var crr blitzcoin.ScalingModel
	for _, m := range blitzcoin.PaperScalingModels() {
		if m.Name == "C-RR" {
			crr = m
		}
	}
	for _, twMs := range []float64{0.2, 1, 5, 7, 20, 50} {
		fmt.Printf("%8.1fms %10.0f %12.0f\n",
			twMs, bc.NMax(twMs*1000), crr.NMax(twMs*1000))
	}

	fmt.Println("\nBlitzCoin keeps up with millisecond-scale workload churn at N in the")
	fmt.Println("hundreds, where centralized controllers saturate below N = 50.")
}
