// Quickstart: simulate the BlitzCoin coin exchange on a 10x10-tile SoC and
// watch the pool converge to the target allocation, then compare against a
// centralized controller on a small SoC.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"blitzcoin"
)

func main() {
	// 1. The algorithm itself: 100 tiles, all coins initially parked in one
	// corner (the state right after a large activity change). The exchange
	// redistributes them until every tile is within 1.5 coins of its fair
	// share.
	fmt.Println("== Coin exchange on a 10x10 torus ==")
	res := blitzcoin.SimulateExchange(blitzcoin.ExchangeOptions{
		Dim:           10,
		Torus:         true,
		Mode:          blitzcoin.OneWay,
		RandomPairing: true,
		DynamicTiming: true,
		Init:          blitzcoin.InitHotspot,
		Seed:          42,
	})
	fmt.Printf("converged:        %v\n", res.Converged)
	fmt.Printf("convergence time: %d NoC cycles (%.2f us at 800 MHz)\n",
		res.ConvergenceCycles, res.ConvergenceMicros)
	fmt.Printf("packets used:     %d\n", res.PacketsToConvergence)
	fmt.Printf("error: start %.1f -> final %.2f coins (worst tile %.2f)\n",
		res.StartErr, res.FinalErr, res.WorstTileErr)
	fmt.Printf("coins conserved:  %v\n\n", res.CoinsConserved)

	// 2. The same algorithm managing a full SoC: the 3x3 autonomous-vehicle
	// platform running its parallel workload under a 120 mW budget,
	// BlitzCoin versus the centralized round-robin baseline.
	fmt.Println("== Full-SoC run: BlitzCoin vs centralized round-robin ==")
	for _, scheme := range []blitzcoin.Scheme{blitzcoin.BC, blitzcoin.CRR} {
		r := blitzcoin.RunSoC(blitzcoin.SoCOptions{
			SoC:    "3x3",
			Scheme: scheme,
			Seed:   42,
		})
		fmt.Printf("%-5s exec=%8.1f us  response(median)=%5.2f us  budget-utilization=%5.1f%%\n",
			r.Scheme, r.ExecMicros, r.MedianResponseMicros, r.UtilizationPct)
	}

	// 3. Why it matters at scale: the fitted response-time laws.
	fmt.Println("\n== How large an SoC can each scheme manage? (Tw = 7 ms) ==")
	for _, m := range blitzcoin.PaperScalingModels() {
		if m.Name == "SW" || m.Name == "PT" {
			continue
		}
		fmt.Printf("%-5s %-11s tau=%.2f us  Nmax=%4.0f accelerators\n",
			m.Name, m.Law, m.TauMicros, m.NMax(7000))
	}
}
