// Extensions: the three features the paper sketches beyond the core
// deployment — the thermal hotspot guard (Sec. III-B), the CPU power proxy
// that would extend BlitzCoin to processor tiles (Sec. IV-C), and the UVFR
// vs conventional-actuator contrast under supply droop (Sec. II-C, Fig. 9).
//
// Run with:
//
//	go run ./examples/extensions
package main

import (
	"fmt"

	"blitzcoin"
)

func main() {
	// 1. Thermal hotspot guard: the same hotspot-initialized exchange with
	// and without a neighborhood coin cap. The guard bounds any 5-tile
	// neighborhood's allocation; convergence still happens.
	fmt.Println("== Thermal hotspot guard (Sec. III-B) ==")
	for _, cap := range []int64{0, 60} {
		res := blitzcoin.SimulateExchange(blitzcoin.ExchangeOptions{
			Dim: 8, Torus: true, RandomPairing: true,
			Init: blitzcoin.InitHotspot, TargetPerTile: 16, CoinsPerTile: 8,
			ThermalCap: cap, Seed: 7,
		})
		label := "uncapped"
		if cap > 0 {
			label = fmt.Sprintf("cap=%d coins/neighborhood", cap)
		}
		fmt.Printf("%-28s converged=%v in %d cycles, %d exchanges clamped\n",
			label, res.Converged, res.ConvergenceCycles, res.ThermalRejects)
	}

	// 2. CPU power proxy: activity counters drive a dynamic coin target,
	// so the core's claim on the budget tracks what it actually runs.
	fmt.Println("\n== CPU power proxy (Sec. IV-C) ==")
	var lastTarget int64
	proxy := blitzcoin.NewCPUPowerProxy(1.5, func(coins int64) { lastTarget = coins })
	phases := []struct {
		name string
		w    blitzcoin.CPUActivityWindow
	}{
		{"compute-bound", blitzcoin.CPUActivityWindow{
			Cycles: 100000, Instr: 200000, MemOps: 25000, FPOps: 25000, BranchMiss: 1000}},
		{"memory-stalled", blitzcoin.CPUActivityWindow{
			Cycles: 100000, Instr: 20000, MemOps: 15000}},
		{"idle-spin", blitzcoin.CPUActivityWindow{
			Cycles: 100000, Instr: 2000}},
	}
	for _, ph := range phases {
		// A few windows let the EWMA settle on the phase.
		for i := 0; i < 8; i++ {
			proxy.Sample(ph.w, 800)
		}
		fmt.Printf("%-15s estimate=%6.1f mW -> coin target %2d\n",
			ph.name, proxy.EstimateMW(), lastTarget)
	}

	// 3. UVFR vs conventional actuation under a supply droop.
	fmt.Println("\n== UVFR vs conventional dual-loop under droop (Fig. 9) ==")
	for _, droop := range []float64{0.03, 0.08} {
		c := blitzcoin.CompareDroop(700, droop)
		fmt.Printf("droop %2.0f mV: UVFR clock %.0f -> %.0f MHz (stretches, always safe); "+
			"conventional violated=%v; guardband costs %.1f%% power always\n",
			droop*1000, c.UVFRFreqBeforeMHz, c.UVFRFreqDuringMHz,
			c.ConventionalViolated, c.GuardbandPowerPenaltyPct)
	}
}
