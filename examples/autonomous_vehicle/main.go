// Autonomous-vehicle scenario: the paper's 3x3 SoC (3 FFT tiles for radar
// depth estimation, 2 Viterbi tiles for vehicle-to-vehicle communication,
// 1 NVDLA tile for object detection) running the Mini-ERA-style dependent
// workload under a tight 60 mW budget — 15% of the accelerators' combined
// maximum power.
//
// The example sweeps every implemented power-management scheme and prints
// execution time, response time, and budget utilization, then dumps the
// winner's per-tile power trace as CSV (the Fig. 16 data).
//
// Run with:
//
//	go run ./examples/autonomous_vehicle
package main

import (
	"fmt"
	"os"

	"blitzcoin"
)

func main() {
	fmt.Println("3x3 autonomous-vehicle SoC, WL-Dep, 60 mW budget, 3 frames")
	fmt.Println()
	fmt.Printf("%-7s %12s %16s %16s %8s\n",
		"scheme", "exec (us)", "resp med (us)", "resp max (us)", "util")

	var best blitzcoin.SoCResult
	for _, scheme := range []blitzcoin.Scheme{
		blitzcoin.BC, blitzcoin.BCC, blitzcoin.CRR,
		blitzcoin.TS, blitzcoin.PT, blitzcoin.Static,
	} {
		r := blitzcoin.RunSoC(blitzcoin.SoCOptions{
			SoC:      "3x3",
			Scheme:   scheme,
			BudgetMW: 60,
			Workload: blitzcoin.AVDependent,
			Repeat:   3,
			Seed:     7,
		})
		if !r.Completed {
			fmt.Printf("%-7s DID NOT COMPLETE\n", scheme)
			continue
		}
		fmt.Printf("%-7s %12.1f %16.2f %16.2f %7.1f%%\n",
			r.Scheme, r.ExecMicros, r.MedianResponseMicros, r.MaxResponseMicros,
			r.UtilizationPct)
		if best.Scheme == "" || r.ExecMicros < best.ExecMicros {
			best = r
		}
	}

	fmt.Printf("\nfastest: %s — writing its power trace to av_power_trace.csv\n", best.Scheme)
	f, err := os.Create("av_power_trace.csv")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := best.WritePowerTraceCSV(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
