// Computer-vision scenario: the paper's 4x4 SoC with 13 accelerator tiles
// (4 Vision preprocessors, 4 Conv2D feature extractors, 5 GEMM classifiers)
// running the night-vision/denoise/classify pipeline.
//
// The example shows the effect of the power budget (450 vs 900 mW — 33% vs
// 66% of combined max power) and of the allocation strategy (Absolute vs
// Relative Proportional) on BlitzCoin's throughput.
//
// Run with:
//
//	go run ./examples/computer_vision
package main

import (
	"fmt"

	"blitzcoin"
)

func main() {
	fmt.Println("4x4 computer-vision SoC, BlitzCoin, 3 frames")
	fmt.Println()

	fmt.Println("-- budget sensitivity (WL-Par, RP allocation) --")
	for _, budget := range []float64{450, 900} {
		r := blitzcoin.RunSoC(blitzcoin.SoCOptions{
			SoC:      "4x4",
			Scheme:   blitzcoin.BC,
			BudgetMW: budget,
			Workload: blitzcoin.CVParallel,
			Seed:     11,
		})
		fmt.Printf("budget %4.0f mW: exec=%8.1f us  avg power=%6.1f mW  util=%5.1f%%\n",
			budget, r.ExecMicros, r.AvgPowerMW, r.UtilizationPct)
	}

	fmt.Println("\n-- allocation strategy (WL-Dep, 450 mW) --")
	for _, ap := range []bool{false, true} {
		r := blitzcoin.RunSoC(blitzcoin.SoCOptions{
			SoC:                  "4x4",
			Scheme:               blitzcoin.BC,
			BudgetMW:             450,
			Workload:             blitzcoin.CVDependent,
			AbsoluteProportional: ap,
			Seed:                 11,
		})
		fmt.Printf("%-2s: exec=%8.1f us\n", r.Strategy, r.ExecMicros)
	}

	fmt.Println("\n-- scheme comparison (WL-Par, 450 mW) --")
	for _, scheme := range []blitzcoin.Scheme{blitzcoin.BC, blitzcoin.BCC, blitzcoin.CRR} {
		r := blitzcoin.RunSoC(blitzcoin.SoCOptions{
			SoC:      "4x4",
			Scheme:   scheme,
			BudgetMW: 450,
			Workload: blitzcoin.CVParallel,
			Seed:     11,
		})
		fmt.Printf("%-5s exec=%8.1f us  resp(median)=%5.2f us\n",
			r.Scheme, r.ExecMicros, r.MedianResponseMicros)
	}
}
